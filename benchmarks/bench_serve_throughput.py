"""Serving throughput: cold model.predict vs frozen snapshot vs micro-batching.

The cold path re-runs the full per-period multi-graph propagation for every
query; a :class:`repro.serve.ModelSnapshot` freezes the propagation outputs
once, so a query is a gather + small matmuls.  This bench measures, on the
real-city preset:

1. cold   -- ``model.predict`` on a single (region, type) pair;
2. snap   -- ``snapshot.predict`` on the same pair (must be >= 10x faster);
3. serve  -- concurrent top-k queries through ``RecommendationService``
             with the cache off (micro-batched scoring) and on (cache hits).

Writes p50/p99 latency and QPS rows to ``benchmarks/results/serve.txt``.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from common import BENCH_SCALE, cached_dataset, emit, run_once

from repro.core import O2SiteRec, save_model
from repro.nn import init
from repro.serve import ModelSnapshot, RecommendationService

COLD_REPS = 5
SNAP_REPS = 200
SERVE_QUERIES = 160
SERVE_THREADS = 8
CANDIDATES_PER_QUERY = 32


def _percentiles_ms(latencies):
    ordered = np.sort(np.asarray(latencies))
    return (
        float(np.percentile(ordered, 50) * 1e3),
        float(np.percentile(ordered, 99) * 1e3),
    )


def _time_repeated(fn, reps):
    latencies = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - started)
    return latencies


def _serve_load(service, snapshot, cached: bool):
    """Concurrent top-k queries; rotating inputs unless ``cached``."""
    regions = snapshot.candidate_regions()
    num_types = snapshot.num_types
    latencies = [None] * SERVE_QUERIES

    def one(i: int) -> None:
        if cached:
            store_type, offset = 0, 0  # identical query -> cache hit
        else:
            store_type, offset = i % num_types, i % max(
                len(regions) - CANDIDATES_PER_QUERY, 1
            )
        candidates = regions[offset:offset + CANDIDATES_PER_QUERY]
        started = time.perf_counter()
        service.query(store_type, candidates, k=3)
        latencies[i] = time.perf_counter() - started

    started = time.perf_counter()
    with ThreadPoolExecutor(SERVE_THREADS) as pool:
        list(pool.map(one, range(SERVE_QUERIES)))
    elapsed = time.perf_counter() - started
    return latencies, SERVE_QUERIES / elapsed


def _experiment(tmp_dir):
    # Same artifact as motivation_city(): real preset, seed 7, bench scale.
    dataset, split = cached_dataset("real", seed=0, scale=max(BENCH_SCALE, 0.7))
    init.seed(11)
    model = O2SiteRec(dataset, split)  # untrained weights; latency-identical

    # The deployment path under test: checkpoint -> frozen snapshot.
    ckpt = tmp_dir / "model.npz"
    save_model(model, ckpt)
    snapshot = ModelSnapshot.from_checkpoint(ckpt, dataset, split)

    pair = np.stack(
        [snapshot.candidate_regions()[:1], np.zeros(1, dtype=np.int64)], axis=1
    )
    assert np.array_equal(model.predict(pair), snapshot.predict(pair))

    cold = _time_repeated(lambda: model.predict(pair), COLD_REPS)
    snap = _time_repeated(lambda: snapshot.predict(pair), SNAP_REPS)

    with RecommendationService(
        snapshot,
        max_batch_size=32,
        batch_window_ms=1.0,
        num_workers=2,
        cache_entries=0,  # measure the scoring path, not the cache
    ) as uncached_service:
        uncached, uncached_qps = _serve_load(
            uncached_service, snapshot, cached=False
        )
        batches = uncached_service.metrics.counter("batches")
        batched_requests = uncached_service.metrics.counter("batched_requests")

    with RecommendationService(
        snapshot, max_batch_size=32, batch_window_ms=1.0, num_workers=2
    ) as cached_service:
        cached_service.query(0, snapshot.candidate_regions()[:CANDIDATES_PER_QUERY])
        cached, cached_qps = _serve_load(cached_service, snapshot, cached=True)
        hit_rate = cached_service.cache.hits / max(
            cached_service.cache.hits + cached_service.cache.misses, 1
        )

    return {
        "dataset": (
            f"{snapshot.num_store_nodes} store nodes, {snapshot.num_types} "
            f"types, d2={snapshot.embedding_dim}, {snapshot.num_periods} periods"
        ),
        "cold": cold,
        "snap": snap,
        "uncached": (uncached, uncached_qps, batches, batched_requests),
        "cached": (cached, cached_qps, hit_rate),
    }


def test_serve_throughput(benchmark, tmp_path):
    results = run_once(benchmark, lambda: _experiment(tmp_path))

    cold_p50, cold_p99 = _percentiles_ms(results["cold"])
    snap_p50, snap_p99 = _percentiles_ms(results["snap"])
    uncached, uncached_qps, batches, batched_requests = results["uncached"]
    un_p50, un_p99 = _percentiles_ms(uncached)
    cached, cached_qps, hit_rate = results["cached"]
    ca_p50, ca_p99 = _percentiles_ms(cached)
    speedup = cold_p50 / snap_p50

    lines = [
        "Serving throughput -- cold model.predict vs repro.serve snapshot",
        f"city: real preset ({results['dataset']})",
        "",
        f"{'path':<42}{'p50 ms':>10}{'p99 ms':>10}{'QPS':>10}",
        f"{'cold  model.predict (1 pair)':<42}{cold_p50:>10.2f}{cold_p99:>10.2f}"
        f"{1e3 / cold_p50:>10.1f}",
        f"{'snap  snapshot.predict (1 pair)':<42}{snap_p50:>10.3f}{snap_p99:>10.3f}"
        f"{1e3 / snap_p50:>10.1f}",
        f"{'serve query k=3/32 cand, 8 thr, no cache':<42}{un_p50:>10.3f}{un_p99:>10.3f}"
        f"{uncached_qps:>10.1f}",
        f"{'serve query k=3/32 cand, 8 thr, cached':<42}{ca_p50:>10.3f}"
        f"{ca_p99:>10.3f}{cached_qps:>10.1f}",
        "",
        f"snapshot speedup over cold path: {speedup:.0f}x (threshold 10x)",
        f"micro-batching: {batched_requests} requests in {batches} batches "
        f"({batched_requests / max(batches, 1):.1f} req/batch)",
        f"cache hit rate under repeated load: {hit_rate:.0%}",
    ]
    emit("serve", "\n".join(lines))

    # The acceptance bar: precomputed serving is >= 10x the cold path.
    assert speedup >= 10.0
    # Micro-batching actually merged concurrent work.
    assert batches < batched_requests