"""Design-choice ablation (beyond the paper's figures).

DESIGN.md §2 documents two implementation choices on top of the paper's
text: the ``h ⊙ q`` product channel in the pair embedding, and the pair's
observable commercial attributes at the prediction head.  This bench
measures what each contributes, plus the literal Eq. 2 geographic
weighting, justifying the deviations with numbers.
"""

from dataclasses import replace

from common import bench_harness, emit, run_once

from repro.experiments import evaluate_model, format_bar_groups
from repro.experiments.harness import build_dataset, train_o2siterec

CHOICES = (
    ("full", {}),
    ("no product channel", {"product_channel": False}),
    ("no commercial head", {"commercial_in_predictor": False}),
    ("literal Eq. 2 weights", {"geo_weight_mode": "literal"}),
)


def test_design_ablation(benchmark):
    config = bench_harness()

    def run():
        results = {}
        for r in range(config.rounds):
            seed = config.base_seed + r
            dataset, split = build_dataset("real", seed, config.scale)
            for name, overrides in CHOICES:
                model_config = replace(config.model_config, **overrides)
                model = train_o2siterec(
                    dataset, split, config, model_config=model_config, seed=seed
                )
                result = evaluate_model(
                    model,
                    dataset,
                    split,
                    top_n=config.top_n,
                    top_n_frac=config.top_n_frac,
                )
                results.setdefault(name, []).append(result)
        return results

    results = run_once(benchmark, run)

    metrics = ("NDCG@3", "RMSE")
    means = {
        name: [
            sum(r[m] for r in rows) / len(rows) for m in metrics
        ]
        for name, rows in results.items()
    }
    emit(
        "design_ablation",
        format_bar_groups(
            "Design-choice ablation (DESIGN.md section 2)", metrics, means
        ),
    )

    full_ndcg = means["full"][0]
    # The product channel is the load-bearing choice.
    assert full_ndcg > means["no product channel"][0] - 0.03
    assert full_ndcg > means["no commercial head"][0] - 0.05
