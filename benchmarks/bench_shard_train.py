"""Banded training step: halo-synchronised tile-parallel fwd+bwd vs dense.

Three fresh-subprocess legs run the same eager batch-128 Adam steps on the
metropolis preset (10k+ regions), identical except for the ``O2_*``
switches read at import time:

* ``reference`` -- ``O2_SHARD_TRAIN=0``: the dense training step (full-
  range autograd attention per relation per period);
* ``serial``    -- ``O2_SHARD_TRAIN=1 O2_SHARD_TILES=8 O2_NUM_PROCS=0``:
  the banded step as the in-process cache-tiled band sweep.  The win is
  locality: band-sized edge intermediates stay cache-resident through the
  block-sweep backward instead of streaming full-graph temporaries
  through DRAM, and the forward stashes each band's attention softmax so
  the backward skips the recompute;
* ``forked``    -- adds ``O2_NUM_PROCS=2``: the same bands fanned over a
  :func:`repro.parallel.process_map` pool with shared mmap arenas and the
  boundary-gradient exchange.  On this 1-core host the leg is exercised
  for *correctness* (bit-identity plus exchange accounting), not speed --
  the pickle channel ships gigabytes per step that a multi-core host
  overlaps with compute; its time is recorded but excluded from floors.

All legs pin ``O2_COMPILE_STEP=0``: a banded step poisons an active
capture by design (see DESIGN.md section 14), so eager-vs-eager isolates
the executor.  Every leg records its per-step losses and a SHA-256 over
the final parameters; the driver asserts both banded legs are *bitwise
identical* to the reference, and that the gate actually engaged, so the
speedup measures the executor and not a silent fallback.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_train.py [--quick]

Writes ``benchmarks/results/shard_train.txt`` and (full mode)
``BENCH_shard_train.json``.  Full mode runs scale-1.0 metropolis and
enforces the PR floor on the *cold* step -- the first batch in a fresh
process, where the dense step pays page-in for its full-graph autograd
temporaries -- which must be >=1.3x the reference leg's cold step.  Warm
medians are recorded alongside with a per-epoch extrapolation (an epoch
is one cold step plus ~hundreds of warm ones, so the epoch ratio tracks
the warm median).  ``--quick`` (CI smoke) runs a small metropolis with
forced tiles for a live bit-identity + engagement check, then validates
the recorded ``BENCH_shard_train.json`` against the same floor; it never
overwrites the recorded full-mode numbers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import time
from pathlib import Path

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SPEEDUP_FLOOR = 1.3
FULL_SCALE = 1.0
QUICK_SCALE = 0.24  # 24x24 grid -- below the auto threshold, tiles forced
SHARD_TILES = 8  # the eval-shard optimum; train adapts per relation
FULL_STEPS = 6
QUICK_STEPS = 3
BATCH = 128


# ---------------------------------------------------------------------------
# Subprocess leg: one training mode, fresh interpreter.
# ---------------------------------------------------------------------------

def run_leg(leg: str, scale: float, steps: int) -> dict:
    import numpy as np

    from repro.core import shard, shard_train
    from repro.core.model import O2SiteRec
    from repro.nn import init
    from repro.optim import Adam, clip_grad_norm
    from repro.runtime import tune_allocator

    tune_allocator()

    dataset, split = common.cached_dataset("metropolis", 0, scale)
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    opt = Adam(model.parameters(), lr=3e-3, weight_decay=1e-5)
    order = np.random.default_rng(0).permutation(len(pairs))

    times, losses = [], []
    for step in range(steps):
        batch = order[step * BATCH : step * BATCH + BATCH]
        batch_pairs, batch_targets = pairs[batch], targets[batch]
        started = time.perf_counter()
        opt.zero_grad()
        loss, _, _ = model.loss(batch_pairs, batch_targets)
        loss.backward(free_graph=True)
        clip_grad_norm(model.parameters(), 5.0)
        opt.step()
        times.append(time.perf_counter() - started)
        losses.append(float(loss.data))

    digest = hashlib.sha256()
    for param in model.parameters():
        digest.update(np.ascontiguousarray(param.data).tobytes())

    warm = times[1:] or times
    return {
        "leg": leg,
        "scale": scale,
        "steps": steps,
        "batch": BATCH,
        "steps_per_epoch": -(-len(pairs) // BATCH),
        "regions": int(dataset.num_regions),
        "gate": shard.shard_train_gate_reason(),
        "cold_s": times[0],
        "best_s": min(times),
        "median_warm_s": sorted(warm)[len(warm) // 2],
        "times_s": times,
        "losses": losses,
        "param_sha": digest.hexdigest(),
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        / 1024.0,
        "stats": shard_train.shard_train_stats(),
    }


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

# Eager on every leg: the banded step poisons replay capture by design, so
# compiled-vs-eager would measure the fallback, not the executor.
LEG_ENV = {
    "reference": {"O2_COMPILE_STEP": "0", "O2_SHARD_TRAIN": "0"},
    "serial": {
        "O2_COMPILE_STEP": "0",
        "O2_SHARD_TRAIN": "1",
        "O2_SHARD_TILES": str(SHARD_TILES),
        "O2_NUM_PROCS": "0",
    },
    "forked": {
        "O2_COMPILE_STEP": "0",
        "O2_SHARD_TRAIN": "1",
        "O2_SHARD_TILES": str(SHARD_TILES),
        "O2_NUM_PROCS": "2",
    },
}


def spawn_leg(name: str, scale: float, steps: int) -> dict:
    return common.run_bench_leg(
        __file__,
        name,
        ["--scale", scale, "--steps", steps],
        env=LEG_ENV[name],
    )


def check_legs(legs: dict) -> None:
    """Engagement + bit-identity invariants shared by quick and full."""
    if legs["reference"]["gate"].startswith("engaged"):
        raise SystemExit("reference leg unexpectedly ran banded")
    for name in ("serial", "forked"):
        leg = legs[name]
        if not leg["gate"].startswith("engaged"):
            raise SystemExit(
                f"{name} leg did not engage the banded-training gate: "
                f"{leg['gate']!r}"
            )
        if leg["stats"]["steps"] == 0 or leg["stats"]["bands"] == 0:
            raise SystemExit(f"{name} leg recorded no banded work")
        if leg["losses"] != legs["reference"]["losses"]:
            raise SystemExit(
                f"{name} losses are NOT bitwise identical to the reference: "
                f"{leg['losses']} != {legs['reference']['losses']}"
            )
        if leg["param_sha"] != legs["reference"]["param_sha"]:
            raise SystemExit(
                f"{name} final parameters are NOT bitwise identical to the "
                f"reference: {leg['param_sha'][:16]} != "
                f"{legs['reference']['param_sha'][:16]}"
            )
    if legs["forked"]["stats"]["exchange_bytes"] == 0:
        raise SystemExit("forked leg shipped no boundary gradients")
    if legs["serial"]["stats"]["exchange_bytes"] != 0:
        raise SystemExit("serial leg unexpectedly used the exchange channel")


def format_report(legs: dict, scale: float, mode: str, floor: float) -> str:
    reference, serial = legs["reference"], legs["serial"]
    speedup_cold = reference["cold_s"] / serial["cold_s"]
    speedup_warm = reference["median_warm_s"] / serial["median_warm_s"]
    rss_drop = 1.0 - serial["peak_rss_mb"] / reference["peak_rss_mb"]
    epoch_steps = reference["steps_per_epoch"]
    lines = [
        "Banded training step: tile-parallel fwd+bwd vs the dense step",
        f"mode={mode}  scale={scale}  regions={reference['regions']}  "
        f"batch={reference['batch']}  steps={reference['steps']}  "
        f"(epoch = {epoch_steps} steps)",
        f"serial gate: {serial['gate']}",
        "",
        f"{'leg':<10} {'cold':>9} {'best':>9} {'median':>9} "
        f"{'peak rss':>10} {'param sha':>18}",
    ]
    for name in ("reference", "serial", "forked"):
        leg = legs[name]
        lines.append(
            f"{name:<10} {leg['cold_s']:>7.2f} s {leg['best_s']:>7.2f} s "
            f"{leg['median_warm_s']:>7.2f} s {leg['peak_rss_mb']:>7.0f} MB "
            f"{leg['param_sha'][:16]:>18}"
        )
    lines += [
        "",
        f"cold-step speedup vs dense reference: {speedup_cold:.2f}x"
        + (
            f" (gated, floor {floor:.1f}x)"
            if mode == "full"
            else " (below-threshold scale; floor gated on the recorded run)"
        ),
        f"warm-median speedup vs dense reference: {speedup_warm:.2f}x "
        f"(a batch-{reference['batch']} epoch is 1 cold + "
        f"{epoch_steps - 1} warm steps, so epoch time tracks this)",
        f"peak training RSS: {reference['peak_rss_mb']:.0f} MB dense vs "
        f"{serial['peak_rss_mb']:.0f} MB banded ({rss_drop:.0%} lower)",
        f"forked leg (2 workers, 1-core host): correctness only -- "
        f"bitwise identical, "
        f"{legs['forked']['stats']['exchange_bytes'] / 1e9:.2f} GB "
        f"boundary-gradient exchange over {legs['forked']['steps']} steps",
        "losses + final params bitwise identical across all legs: True",
    ]
    return "\n".join(lines)


def validate_recorded(path: Path, floor: float) -> str:
    """CI gate on the recorded full-mode numbers (quick mode)."""
    if not path.exists():
        return (
            "BENCH_shard_train.json: absent (fresh checkout), "
            "floor not checked"
        )
    data = json.loads(path.read_text())
    recorded = float(data["speedup"]["vs_reference_cold"])
    if not data.get("identical"):
        raise SystemExit(
            "BENCH_shard_train.json records a bit-identity failure"
        )
    if recorded < floor:
        raise SystemExit(
            f"BENCH_shard_train.json cold speedup {recorded:.2f}x is below "
            f"the {floor:.1f}x floor"
        )
    return (
        f"BENCH_shard_train.json: recorded {recorded:.2f}x cold / "
        f"{data['speedup']['vs_reference_warm_median']:.2f}x warm at "
        f"scale={data['scale']} -- floor OK"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--leg", choices=sorted(LEG_ENV))
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    ns = parser.parse_args()

    if ns.leg:
        result = run_leg(ns.leg, ns.scale or FULL_SCALE, ns.steps or 3)
        print(json.dumps(result))
        return

    quick = ns.quick
    scale = ns.scale if ns.scale is not None else (
        QUICK_SCALE if quick else FULL_SCALE
    )
    steps = ns.steps if ns.steps is not None else (
        QUICK_STEPS if quick else FULL_STEPS
    )

    legs = {name: spawn_leg(name, scale, steps) for name in LEG_ENV}
    check_legs(legs)
    text = format_report(legs, scale, "quick" if quick else "full",
                         SPEEDUP_FLOOR)
    if quick:
        text += "\n" + validate_recorded(
            ROOT / "BENCH_shard_train.json", SPEEDUP_FLOOR
        )
    common.emit("shard_train", text)

    speedup = legs["reference"]["cold_s"] / legs["serial"]["cold_s"]
    if not quick:
        payload = {
            "mode": "full",
            "scale": scale,
            "steps": steps,
            "batch": BATCH,
            "floors": {"speedup_cold": SPEEDUP_FLOOR},
            "leg_env": LEG_ENV,
            "identical": all(
                legs[name]["param_sha"] == legs["reference"]["param_sha"]
                and legs[name]["losses"] == legs["reference"]["losses"]
                for name in ("serial", "forked")
            ),
            "speedup": {
                "vs_reference_cold": speedup,
                "vs_reference_warm_median": legs["reference"][
                    "median_warm_s"
                ]
                / legs["serial"]["median_warm_s"],
                "vs_reference_warm_best": legs["reference"]["best_s"]
                / legs["serial"]["best_s"],
                "peak_rss": legs["reference"]["peak_rss_mb"]
                / legs["serial"]["peak_rss_mb"],
            },
            **{name: legs[name] for name in LEG_ENV},
        }
        (ROOT / "BENCH_shard_train.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        if speedup < SPEEDUP_FLOOR:
            raise SystemExit(
                f"cold banded-step speedup {speedup:.2f}x is below the "
                f"{SPEEDUP_FLOOR:.1f}x floor"
            )


if __name__ == "__main__":
    main()
