"""Fig. 11: ablation of the two attention mechanisms.

Paper shape: the full model beats both w/o NA (mean aggregation instead of
the node-level attention) and w/o SA (mean over periods instead of the time
semantics-level attention).
"""

from dataclasses import replace

from common import bench_harness, emit, run_once

from repro.experiments import format_bar_groups, run_ablation

VARIANTS = ("O2-SiteRec", "w/o NA", "w/o SA")


def test_fig11_ablation_attention(benchmark):
    # Same budget bump as Fig. 10: compare converged models, not
    # convergence speed.
    base = bench_harness()
    config = replace(
        base,
        scale=max(base.scale, 0.625),
        epochs=max(base.epochs, 60),
        rounds=max(base.rounds, 3),
    )
    results = run_once(
        benchmark, lambda: run_ablation(VARIANTS, config=config)
    )

    metrics = ("NDCG@3", "Precision@3")
    emit(
        "fig11",
        format_bar_groups(
            "Fig. 11 -- Effect of the attention mechanisms",
            metrics,
            {v: [results[v].mean(m) for m in metrics] for v in VARIANTS},
        ),
    )

    full = results["O2-SiteRec"].mean("NDCG@3")
    assert full >= results["w/o NA"].mean("NDCG@3") - 0.02
    assert full >= results["w/o SA"].mean("NDCG@3") - 0.02
