"""Rolling-origin temporal evaluation (beyond the paper).

Train on the first 10 days, rank candidate regions by the FOLLOWING days'
demand: the deployment-grade version of the paper's random split.  Expected
shape: the ordering of Table III survives the stricter protocol.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, emit, run_once

from repro.experiments import (
    TemporalConfig,
    format_bar_groups,
    run_temporal_evaluation,
)

BASELINES = ("HGT", "GraphRec")


def test_temporal_protocol(benchmark):
    config = TemporalConfig(
        scale=max(BENCH_SCALE, 0.6),
        train_days=10,
        epochs=BENCH_EPOCHS,
    )
    results = run_once(
        benchmark, lambda: run_temporal_evaluation(config, baselines=BASELINES)
    )

    metrics = ("NDCG@3", "Precision@3", "RMSE")
    emit(
        "temporal",
        format_bar_groups(
            "Rolling-origin protocol -- train on days 1-10, rank days 11-14",
            metrics,
            {
                name: [result[m] for m in metrics]
                for name, result in results.items()
            },
        ),
    )

    ours = results["O2-SiteRec"]
    for name in BASELINES:
        assert ours["NDCG@3"] > results[name]["NDCG@3"] - 0.02, name