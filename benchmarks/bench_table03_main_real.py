"""Table III: main comparison on the (stand-in) real-world dataset.

Paper shape, asserted below:
* O2-SiteRec beats every baseline on every reported metric;
* the Adaption setting beats Original for the strong baselines;
* HGT beats RGCN.

Absolute values differ from the paper (scaled-down synthetic city); see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from common import bench_harness, emit, run_once

from repro.experiments import compare_models, format_comparison_table

METRICS = ("NDCG@3", "NDCG@5", "Precision@3", "Precision@5", "RMSE")


def test_table03_main_real(benchmark):
    config = bench_harness()
    table = run_once(
        benchmark,
        lambda: compare_models("real", config=config, metrics=METRICS),
    )

    emit(
        "table03",
        format_comparison_table(
            table,
            title=(
                "Table III -- Performance comparison on the real-world "
                f"stand-in ({config.rounds} rounds, scale {config.scale})"
            ),
            metrics=METRICS,
        ),
    )

    ours = table.rows["O2-SiteRec"]
    for key, row in table.rows.items():
        if key == "O2-SiteRec":
            continue
        assert ours.mean("NDCG@3") > row.mean("NDCG@3"), key
        assert ours.mean("RMSE") < row.mean("RMSE") * 1.05, key
    # Adaption >= Original for the strong baselines.
    for name in ("HGT", "GraphRec"):
        assert (
            table.rows[f"{name}/adaption"].mean("NDCG@3")
            >= table.rows[f"{name}/original"].mean("NDCG@3") - 0.05
        )
