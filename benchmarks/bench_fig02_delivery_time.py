"""Fig. 2: delivery time tracks the supply-demand ratio.

Paper shape: the two curves move inversely over the day; delivery time is a
valid proxy for courier capacity.
"""

from common import emit, motivation_city, run_once

from repro.experiments import delivery_time_vs_ratio, format_series


def test_fig02_delivery_time(benchmark):
    sim = motivation_city()
    data = run_once(benchmark, lambda: delivery_time_vs_ratio(sim))

    text = format_series(
        "Fig. 2 -- Delivery time vs supply-demand ratio "
        f"(correlation {float(data['correlation']):.3f})",
        "hour",
        data["hours"].tolist(),
        {"ratio": data["ratio"], "delivery_min": data["delivery_minutes"]},
    )
    emit("fig02", text)

    assert float(data["correlation"]) < -0.3, (
        "delivery time must anti-correlate with the supply-demand ratio"
    )
