"""Fig. 1: orders, couriers and supply-demand ratio per 2-hour bin.

Paper shape: order and courier counts peak in the noon (10-14) and evening
(16-20) rush hours, while the supply-demand ratio dips there.
"""

from common import emit, motivation_city, run_once

from repro.experiments import format_series, supply_demand_by_bin


def test_fig01_supply_demand(benchmark):
    sim = motivation_city()
    data = run_once(benchmark, lambda: supply_demand_by_bin(sim))

    text = format_series(
        "Fig. 1 -- Order and courier count / supply-demand ratio (normalised)",
        "hour",
        data["hours"].tolist(),
        {
            "orders": data["orders"],
            "couriers": data["couriers"],
            "ratio": data["ratio"],
        },
    )
    emit("fig01", text)

    active = data["orders"] > 0
    hours = data["hours"]
    noon = data["ratio"][(hours >= 10) & (hours < 14) & active].mean()
    afternoon = data["ratio"][(hours >= 14) & (hours < 16) & active].mean()
    assert noon < afternoon, "rush-hour ratio must dip below the afternoon"
