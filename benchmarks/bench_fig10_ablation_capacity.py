"""Fig. 10: ablation of courier capacity and customer preferences.

Paper shape: full model > w/o Co > w/o CoCu -- removing the courier
capacity model hurts, and additionally removing the customer-preference
edges hurts a lot.
"""

from dataclasses import replace

from common import bench_harness, emit, run_once

from repro.experiments import format_bar_groups, run_ablation

VARIANTS = ("O2-SiteRec", "w/o Co", "w/o CoCu")


def test_fig10_ablation_capacity(benchmark):
    # The ablation needs the full model near convergence: at very small
    # budgets the *simpler* variants converge first and the comparison
    # measures optimisation speed, not modelling power.
    base = bench_harness()
    config = replace(
        base,
        scale=max(base.scale, 0.625),
        epochs=max(base.epochs, 60),
        rounds=max(base.rounds, 3),
    )
    results = run_once(
        benchmark, lambda: run_ablation(VARIANTS, config=config)
    )

    metrics = ("NDCG@3", "Precision@3")
    emit(
        "fig10",
        format_bar_groups(
            "Fig. 10 -- Impact of courier capacity and customer preferences",
            metrics,
            {v: [results[v].mean(m) for m in metrics] for v in VARIANTS},
        ),
    )

    full = results["O2-SiteRec"].mean("NDCG@3")
    no_co = results["w/o Co"].mean("NDCG@3")
    no_cocu = results["w/o CoCu"].mean("NDCG@3")
    # On the synthetic city the capacity/preference contributions are a few
    # points at most (see EXPERIMENTS.md): assert the stable part of the
    # paper's shape -- the full model never trails its ablations.
    assert full >= no_cocu - 0.02, "full model must not trail w/o CoCu"
    assert full >= no_co - 0.02, "capacity should help (or at least not hurt)"
    assert results["O2-SiteRec"].mean("Precision@3") >= results[
        "w/o CoCu"
    ].mean("Precision@3") - 0.02, "full model should lead on Precision@3"
