"""Fig. 5: top popular store types per period.

Paper shape: the top-3 list changes along the day (breakfast categories
lead in the morning, dinner/night categories in the evening).
"""

from common import emit, motivation_city, run_once

from repro.data import TimePeriod
from repro.experiments import top_store_types_by_period


def test_fig05_top_types(benchmark):
    sim = motivation_city()
    top = run_once(benchmark, lambda: top_store_types_by_period(sim, k=3))

    lines = ["Fig. 5 -- Top popular store types per period", "=" * 60]
    for period in TimePeriod:
        entries = ", ".join(f"{name} ({count})" for name, count in top[period])
        lines.append(f"{period.label:14s} {entries}")
    emit("fig05", "\n".join(lines))

    leaders = {top[p][0][0] for p in TimePeriod}
    assert len(leaders) >= 2, "preferences must differ across periods"
    morning = [name for name, _ in top[TimePeriod.MORNING]]
    assert "breakfast" in morning or "steamed_buns" in morning
