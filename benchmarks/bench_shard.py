"""Sharded propagation: grid-tile band sweep vs the single-process legs.

Three fresh-subprocess legs on the metropolis preset (10k+ regions, ~1.3M
S-U edges across five periods), identical except for the ``O2_*`` switches
read at import time:

* ``single``    -- ``O2_SHARD_TILES=0``: the repo's default single-process
  configuration (period-batched propagation, full-graph kernels);
* ``perperiod`` -- ``O2_SHARD_TILES=0 O2_BATCH_PERIODS=0``: the per-period
  reference path, the exact FP op sequence the sharded executor promises
  to reproduce byte-for-byte;
* ``sharded``   -- ``O2_SHARD_TILES=8``: grid-tile banded propagation.
  On a single core this runs as the in-process band sweep (no forks); the
  win is cache tiling -- band-local edge intermediates stay resident
  instead of streaming ~85 MB of full-graph temporaries through DRAM per
  kernel -- plus value-only execution with no autograd tape.  With
  ``O2_NUM_PROCS`` set on a multi-core host the same bands fan out over a
  process pool and shared read-only arenas.

Every leg records a SHA-256 over the propagated ``(h, q)`` tensors of all
periods; the driver asserts ``sharded`` is *identical* to ``perperiod``
(the batched leg differs in summation order by design, ~1e-15).  The
sharded leg must also report that the gate actually engaged, so the
speedup is measuring the executor and not a silent fallback.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]

Writes ``benchmarks/results/shard.txt`` and (full mode) ``BENCH_shard.json``.
Full mode runs the scale-1.0 metropolis and enforces the PR floor: the
*cold* sharded propagation -- the first run in a fresh process, which is
how metropolis propagation is actually consumed (snapshot export, a
post-``fit`` eval) -- must be >=3x the default single-process leg's cold
run.  Cold is where the full-graph legs pay for their working set: ~2 GB
of period-stacked temporaries page-faulted in through the pool, versus
~0.9 GB peak for the band sweep.  Warm repetitions are recorded
alongside (best + median): once the pool is hot the per-period reference
closes most of the gap in time (not in memory), and the report says so.
``--quick`` (CI smoke) runs a small metropolis with forced tiles for a
live bit-identity + engagement check, then validates the recorded
``BENCH_shard.json`` against the same floor; it never overwrites the
recorded full-mode numbers.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import resource
import time
from pathlib import Path

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SPEEDUP_FLOOR = 3.0
FULL_SCALE = 1.0
QUICK_SCALE = 0.24  # 24x24 grid -- below the auto threshold, tiles forced
SHARD_TILES = 8  # optimum from the band-count scan (4/8/16/25/50)


# ---------------------------------------------------------------------------
# Subprocess leg: one propagation mode, fresh interpreter.
# ---------------------------------------------------------------------------

def run_leg(leg: str, scale: float, reps: int) -> dict:
    from repro.core import shard
    from repro.core.model import O2SiteRec
    from repro.core.recommender import batch_periods_enabled
    from repro.nn import init
    from repro.runtime import tune_allocator

    tune_allocator()

    dataset, _split = common.cached_dataset("metropolis", 0, scale)
    init.seed(0)
    model = O2SiteRec(dataset)
    model.eval()
    rec = model.recommender
    capacity_su, _ = model._capacity_pass()
    tiles_engaged = shard.shard_tiles_for(rec, capacity_su)

    def sha_periods(out) -> str:
        digest = hashlib.sha256()
        for period in sorted(out, key=int):
            h, q = out[period]
            digest.update(h.data.tobytes())
            digest.update(q.data.tobytes())
        return digest.hexdigest()

    times, sha = [], None
    gc.collect()
    for _ in range(reps):
        started = time.perf_counter()
        out = rec.propagate_periods(capacity_su)
        times.append(time.perf_counter() - started)
        digest = sha_periods(out)
        assert sha is None or digest == sha, "propagation is not deterministic"
        sha = digest
        del out
        gc.collect()

    warm = times[1:] or times
    edges = sum(
        len(sub.su_dst_s) for sub in rec.graph.subgraphs.values()
    ) + len(rec.graph.sa_attr)
    return {
        "leg": leg,
        "scale": scale,
        "tiles_engaged": int(tiles_engaged),
        "batched_periods": bool(batch_periods_enabled()),
        "store_nodes": int(rec.graph.num_store_nodes),
        "customer_nodes": int(rec.graph.num_customer_nodes),
        "edges": int(edges),
        "cold_s": times[0],
        "best_s": min(times),
        "median_warm_s": sorted(warm)[len(warm) // 2],
        "times_s": times,
        "sha": sha,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        / 1024.0,
    }


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

LEG_ENV = {
    "single": {"O2_SHARD_TILES": "0"},
    "perperiod": {"O2_SHARD_TILES": "0", "O2_BATCH_PERIODS": "0"},
    "sharded": {"O2_SHARD_TILES": str(SHARD_TILES)},
}


def spawn_leg(name: str, scale: float, reps: int) -> dict:
    return common.run_bench_leg(
        __file__,
        name,
        ["--scale", scale, "--reps", reps],
        env=LEG_ENV[name],
    )


def check_legs(legs: dict) -> None:
    """Engagement + bit-identity invariants shared by quick and full."""
    if legs["single"]["tiles_engaged"] != 0:
        raise SystemExit("single leg unexpectedly sharded")
    if legs["perperiod"]["tiles_engaged"] != 0:
        raise SystemExit("perperiod leg unexpectedly sharded")
    if not legs["single"]["batched_periods"]:
        raise SystemExit("single leg lost period batching (not the default)")
    if legs["sharded"]["tiles_engaged"] <= 1:
        raise SystemExit("sharded leg did not engage the tile gate")
    if legs["sharded"]["sha"] != legs["perperiod"]["sha"]:
        raise SystemExit(
            "sharded propagation is NOT bit-identical to the per-period "
            f"reference: {legs['sharded']['sha'][:16]} != "
            f"{legs['perperiod']['sha'][:16]}"
        )


def format_report(legs: dict, scale: float, mode: str, floor: float) -> str:
    single, perperiod, sharded = (
        legs["single"], legs["perperiod"], legs["sharded"],
    )
    speedup_cold = single["cold_s"] / sharded["cold_s"]
    speedup_warm = single["best_s"] / sharded["best_s"]
    speedup_vs_pp = perperiod["cold_s"] / sharded["cold_s"]
    rss_ratio = single["peak_rss_mb"] / sharded["peak_rss_mb"]
    lines = [
        "Sharded propagation: grid-tile band sweep vs single-process legs",
        f"mode={mode}  scale={scale}  tiles={sharded['tiles_engaged']}  "
        f"stores={single['store_nodes']}  "
        f"customers={single['customer_nodes']}  edges={single['edges']}",
        "",
        f"{'leg':<10} {'cold':>9} {'best':>9} {'median':>9} "
        f"{'peak rss':>10} {'sha':>18}",
    ]
    for name in ("single", "perperiod", "sharded"):
        leg = legs[name]
        lines.append(
            f"{name:<10} {leg['cold_s']:>7.2f} s {leg['best_s']:>7.2f} s "
            f"{leg['median_warm_s']:>7.2f} s {leg['peak_rss_mb']:>7.0f} MB "
            f"{leg['sha'][:16]:>18}"
        )
    lines += [
        "",
        f"cold speedup vs default single-process leg: {speedup_cold:.2f}x"
        + (
            f" (gated, floor {floor:.1f}x)"
            if mode == "full"
            else " (below-threshold scale; floor gated on the recorded run)"
        )
        + f"; vs per-period reference: {speedup_vs_pp:.2f}x",
        f"warm best-of-reps vs default single-process leg: "
        f"{speedup_warm:.2f}x (pool hot: the full-graph legs stop paying "
        f"page-in, the memory gap remains)",
        f"peak RSS: {single['peak_rss_mb']:.0f} MB single vs "
        f"{sharded['peak_rss_mb']:.0f} MB sharded ({rss_ratio:.1f}x)",
        f"bit-identical to per-period reference: "
        f"{sharded['sha'] == perperiod['sha']}",
    ]
    return "\n".join(lines)


def validate_recorded(path: Path, floor: float) -> str:
    """CI gate on the recorded full-mode numbers (quick mode)."""
    if not path.exists():
        return "BENCH_shard.json: absent (fresh checkout), floor not checked"
    data = json.loads(path.read_text())
    recorded = float(data["speedup"]["vs_single_cold"])
    if not data.get("identical"):
        raise SystemExit("BENCH_shard.json records a bit-identity failure")
    if recorded < floor:
        raise SystemExit(
            f"BENCH_shard.json speedup {recorded:.2f}x is below the "
            f"{floor:.1f}x floor"
        )
    return (
        f"BENCH_shard.json: recorded {recorded:.2f}x at "
        f"scale={data['scale']} tiles={data['tiles']} -- floor OK"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--leg", choices=sorted(LEG_ENV))
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--reps", type=int, default=None)
    ns = parser.parse_args()

    if ns.leg:
        result = run_leg(ns.leg, ns.scale or FULL_SCALE, ns.reps or 3)
        print(json.dumps(result))
        return

    quick = ns.quick
    scale = ns.scale if ns.scale is not None else (
        QUICK_SCALE if quick else FULL_SCALE
    )
    reps = ns.reps if ns.reps is not None else (2 if quick else 3)

    legs = {name: spawn_leg(name, scale, reps) for name in LEG_ENV}
    check_legs(legs)
    text = format_report(legs, scale, "quick" if quick else "full",
                         SPEEDUP_FLOOR)
    if quick:
        text += "\n" + validate_recorded(ROOT / "BENCH_shard.json",
                                         SPEEDUP_FLOOR)
    common.emit("shard", text)

    speedup = legs["single"]["cold_s"] / legs["sharded"]["cold_s"]
    if not quick:
        payload = {
            "mode": "full",
            "scale": scale,
            "reps": reps,
            "tiles": legs["sharded"]["tiles_engaged"],
            "floors": {"speedup": SPEEDUP_FLOOR},
            "leg_env": LEG_ENV,
            "identical": legs["sharded"]["sha"] == legs["perperiod"]["sha"],
            "speedup": {
                "vs_single_cold": speedup,
                "vs_single_warm_best": legs["single"]["best_s"]
                / legs["sharded"]["best_s"],
                "vs_perperiod_cold": legs["perperiod"]["cold_s"]
                / legs["sharded"]["cold_s"],
                "peak_rss": legs["single"]["peak_rss_mb"]
                / legs["sharded"]["peak_rss_mb"],
            },
            **{name: legs[name] for name in LEG_ENV},
        }
        (ROOT / "BENCH_shard.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        if speedup < SPEEDUP_FLOOR:
            raise SystemExit(
                f"cold sharded speedup {speedup:.2f}x is below the "
                f"{SPEEDUP_FLOOR:.1f}x floor"
            )


if __name__ == "__main__":
    main()
