"""Fig. 4: delivery-time distribution at a fixed distance (2.5-3 km).

Paper shape: the same distance takes different times in different periods,
and order counts fall off as delivery time grows (customers will not wait).
"""

import numpy as np

from common import emit, motivation_city, run_once

from repro.experiments import delivery_time_distribution, format_series


def test_fig04_time_distribution(benchmark):
    sim = motivation_city()
    data = run_once(
        benchmark,
        lambda: delivery_time_distribution(sim, distance_band_m=(2500.0, 3000.0)),
    )

    hist = data["histogram"]
    edges = data["edges"]
    labels = [
        f"{int(edges[i])}-{int(edges[i + 1]) if np.isfinite(edges[i + 1]) else '+'}min"
        for i in range(hist.shape[1])
    ]
    text = format_series(
        "Fig. 4 -- Orders at 2.5-3 km by delivery-time bin, per period",
        "bin",
        labels,
        {str(p): hist[i] for i, p in enumerate(data["periods"])},
        fmt="{:.0f}",
    )
    emit("fig04", text)

    # Tail decay: far fewer orders above 40 min than in the modal bins.
    totals = hist.sum(axis=0)
    assert totals[4:].sum() < totals[1:3].sum()
