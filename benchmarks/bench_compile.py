"""Step compiler: trace-and-replay training vs the eager pooled baseline.

Two fresh-subprocess legs on the real-city preset, identical except for
``O2_COMPILE_STEP`` (both run the default memory plane: buffer pool on,
tuned allocator, tape retirement):

* ``eager`` -- ``O2_COMPILE_STEP=0``: every batch step builds the autograd
  tape, walks it node by node, and dispatches each op through the Python
  tensor layer (the BENCH_memory ``pool`` leg's configuration);
* ``plan``  -- ``O2_COMPILE_STEP=1``: the first step per batch signature
  is captured into an :class:`repro.tensor.plan.ExecutionPlan`; every
  subsequent step replays the recorded thunk list and flat backward
  schedule with zero tape construction and zero autograd dispatch.

Both legs record the full batch-loss sequence and a SHA-256 fingerprint of
the final parameters; the driver asserts they are *identical* -- replay
re-runs the same FP op sequence into the same buffers, it never reorders
math.  The driver also asserts the plan leg actually captured and replayed
(and never fell back to eager), so the speedup is measuring the compiler.

Usage::

    PYTHONPATH=src python benchmarks/bench_compile.py [--quick]

Writes ``benchmarks/results/compile.txt`` and ``BENCH_compile.json``.
Full mode runs two epochs per leg (the steady statistic is the fastest
step of the final epoch, past every capture; the median is recorded
alongside) and enforces the PR floor on the scale-1.0 batch-128
epoch: >=1.25x over the pooled baseline recorded by the memory-plane
bench (``BENCH_memory.json`` ``pool`` leg -- the epoch this PR's charter
is to win back; target 1.5x), with the live re-measured eager leg
reported alongside.  ``--quick`` (CI smoke) asserts bit-for-bit
equality, plan engagement, and a >=1.0x floor against the live eager leg
(the tiny city leaves little dispatch overhead to win back, so quick
only checks "not slower").
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import time
from pathlib import Path

import numpy as np

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

BATCH_SIZE = 128  # paper_train_config().batch_size


# ---------------------------------------------------------------------------
# Subprocess leg: one execution mode, fresh interpreter.
# ---------------------------------------------------------------------------

def run_leg(leg: str, scale: float, steps: int) -> dict:
    from repro.experiments.harness import build_dataset
    from repro.core.model import O2SiteRec
    from repro.core.recommender import batch_periods_enabled
    from repro.nn import init
    from repro.optim import Adam, clip_grad_norm
    from repro.runtime import env_flag, tune_allocator
    from repro.tensor import memprof
    from repro.tensor.plan import CompiledStep

    tune_allocator()

    dataset, split = build_dataset("real", 0, scale)
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)

    rng = np.random.default_rng(0)
    order = rng.permutation(len(pairs))
    batches = np.array_split(order, int(np.ceil(len(pairs) / BATCH_SIZE)))
    batch_data = [
        (np.ascontiguousarray(pairs[sel]), targets[sel]) for sel in batches
    ]

    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    optimizer = Adam(model.parameters(), lr=1e-4)

    compiled = None
    if env_flag("O2_COMPILE_STEP", True):
        compiled = CompiledStep(
            loss_fn=lambda p, t: model.loss(p, t)[0],
            parameters=model.parameters(),
            optimizer=optimizer,
            clip_fn=lambda: clip_grad_norm(model.parameters(), 5.0),
            guard_fn=lambda: (model.training, batch_periods_enabled()),
        )
    gc.collect()

    def one_step(batch_pairs, batch_targets) -> float:
        if compiled is not None:
            loss_val = compiled.step(batch_pairs, batch_targets)
            if loss_val is not None:
                return loss_val
        optimizer.zero_grad()
        loss, _, _ = model.loss(batch_pairs, batch_targets)
        loss.backward(free_graph=True)
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        return float(loss.data)

    # GC hygiene for the timed region: the eager tape is cycle-heavy
    # (node -> closure -> node), and collector pauses land as one-sided
    # noise on a single-core box.  Both legs get the same treatment.
    #
    # The allocation profile is snapshotted after the warmup epoch(s) --
    # captures included, which is where the interesting allocations are --
    # and the profiler is then switched off so the steady window times the
    # step, not the per-request profiler hook.  Both legs alike.
    losses, batch_times = [], []
    snap = None
    profile_cutoff = steps - min(len(batch_data), steps)
    gc.collect()
    gc.disable()
    try:
        for i in range(steps):
            if i == profile_cutoff and snap is None:
                snap = memprof.report()
                memprof.set_mem_profile(False)
            batch_pairs, batch_targets = batch_data[i % len(batch_data)]
            started = time.perf_counter()
            losses.append(one_step(batch_pairs, batch_targets))
            batch_times.append((time.perf_counter() - started) * 1e3)
    finally:
        gc.enable()

    # Full-batch steps: one plan, deepest graph -- the regime where capture
    # cost amortises fastest (a single signature replays every epoch).  The
    # first two steps are warmup (the plan leg pays its one-off capture
    # there; the eager leg warms its identity-keyed caches) so the timed
    # window measures the steady state both legs settle into.
    full_times = []
    gc.collect()
    gc.disable()
    try:
        for step_no in range(2 + max(2, steps // 5)):
            started = time.perf_counter()
            losses.append(one_step(pairs, targets))
            if step_no >= 2:
                full_times.append((time.perf_counter() - started) * 1e3)
    finally:
        gc.enable()

    fingerprint = hashlib.sha256(
        b"".join(
            np.ascontiguousarray(p.data).tobytes() for p in model.parameters()
        )
    ).hexdigest()
    if snap is None:
        snap = memprof.report()
    if compiled is not None:
        compiled.close()

    # Minimum over the steady window: per-step cost is math plus a
    # strictly one-sided noise term (scheduler preemption on a shared
    # single-core box adds time, never removes it), so the fastest
    # observed steady step is the least-contaminated estimate of the
    # per-step cost for both legs alike -- the statistic interval timers
    # like hyperfine report for the same reason.  The window covers the
    # final epoch, past every capture the plan leg pays (two batch
    # signatures from the array_split remainder); the median over the
    # same window is reported alongside for noise visibility.
    window = min(len(batch_data), len(batch_times))
    steady = lambda xs, w: float(np.min(xs[-min(w, len(xs)):]))  # noqa: E731
    steady_med = lambda xs, w: float(  # noqa: E731
        np.median(xs[-min(w, len(xs)):])
    )
    batch_step_ms = steady(batch_times, window)
    return {
        "leg": leg,
        "num_pairs": int(len(pairs)),
        "num_batches": len(batch_data),
        "losses": losses,
        "param_sha256": fingerprint,
        "batch_step_ms": batch_step_ms,
        "batch_step_ms_median": steady_med(batch_times, window),
        "batch_epoch_s": batch_step_ms * len(batch_data) / 1e3,
        "full_step_ms": steady(full_times, 8),
        "full_step_ms_median": steady_med(full_times, 8),
        "plan": snap["plan"],
        "pool": snap["pool"],
        "memprof_text": memprof.format_report(snap),
    }


# Both legs run the default memory plane (pool on, tuned allocator); the
# only difference is whether the step compiler is engaged, so the measured
# delta is tape construction + Python autograd dispatch and nothing else.
LEG_ENV = {
    "eager": {
        "O2_COMPILE_STEP": "0",
        "O2_BUFFER_POOL": "1",
        "O2_NUM_THREADS": "1",
        "O2_MEM_PROFILE": "1",
    },
    "plan": {
        "O2_COMPILE_STEP": "1",
        "O2_BUFFER_POOL": "1",
        "O2_NUM_THREADS": "1",
        "O2_MEM_PROFILE": "1",
    },
}


def spawn_leg(name: str, scale: float, steps: int) -> dict:
    return common.run_bench_leg(
        __file__, name, ["--scale", scale, "--steps", steps], env=LEG_ENV[name]
    )


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEG_ENV), help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(run_leg(args.leg, args.scale, args.steps)))
        return 0

    quick = args.quick
    scale = args.scale if args.scale is not None else (0.3 if quick else 1.0)
    # Full mode runs two epochs so the steady window (the last epoch) sits
    # past both batch-signature captures the plan leg pays in epoch one.
    steps = args.steps if args.steps is not None else (8 if quick else 42)
    # Quick mode runs a tiny city on shared CI runners: the floor only
    # guards against the compiler making things *slower*; the 1.25x
    # acceptance floor (1.5x target) applies to the full-scale run.
    speedup_floor = 1.0 if quick else 1.25
    speedup_target = 1.5

    legs = {name: spawn_leg(name, scale, steps) for name in ("eager", "plan")}
    eager, plan = legs["eager"], legs["plan"]

    identical = (
        eager["losses"] == plan["losses"]
        and eager["param_sha256"] == plan["param_sha256"]
    )
    stats = plan["plan"]
    engaged = (
        stats["captures"] >= 1
        and stats["replays"] >= 1
        and stats["eager_fallbacks"] == 0
    )
    speedup = eager["batch_epoch_s"] / plan["batch_epoch_s"]
    speedup_full = eager["full_step_ms"] / plan["full_step_ms"]

    # The PR floor is defined against the memory-plane bench's pooled
    # baseline (BENCH_memory.json, ``pool`` leg): the step compiler's
    # charter is to win back what is left of *that* epoch.  The live
    # eager leg above is the same configuration re-measured today and is
    # reported alongside for transparency; when BENCH_memory.json is
    # absent (fresh checkout), the live leg doubles as the baseline.
    baseline_epoch_s = eager["batch_epoch_s"]
    baseline_src = "live eager leg"
    mem_json = ROOT / "BENCH_memory.json"
    if not quick and mem_json.exists():
        try:
            mem = json.loads(mem_json.read_text())
            if mem.get("scale") == scale and mem.get("batch_size") == BATCH_SIZE:
                baseline_epoch_s = float(mem["pool"]["batch_epoch_s"])
                baseline_src = "BENCH_memory.json pool leg"
        except (KeyError, TypeError, ValueError):
            pass
    speedup_vs_baseline = baseline_epoch_s / plan["batch_epoch_s"]
    gated_speedup = speedup_vs_baseline if not quick else speedup

    lines = [
        "Step compiler: trace-and-replay plans vs eager pooled training",
        f"mode={'quick' if quick else 'full'}  scale={scale}  "
        f"batch_size={BATCH_SIZE}  pairs={plan['num_pairs']}  "
        f"batches/epoch={plan['num_batches']}  steps={steps}",
        "",
        f"{'leg':<6} {'batch step':>12} {'(median)':>10} "
        f"{'batch epoch':>12} {'full step':>11}",
    ]
    for name in ("eager", "plan"):
        leg = legs[name]
        lines.append(
            f"{name:<6} {leg['batch_step_ms']:>9.2f} ms "
            f"{leg['batch_step_ms_median']:>7.2f} ms "
            f"{leg['batch_epoch_s']:>10.3f} s {leg['full_step_ms']:>8.1f} ms"
        )
    lines += [
        "",
        f"speedup: batched epoch {speedup:.2f}x vs live eager leg, "
        f"full-batch step {speedup_full:.2f}x",
        f"speedup vs pooled baseline ({baseline_src}, "
        f"{baseline_epoch_s:.3f} s/epoch): {speedup_vs_baseline:.2f}x "
        f"(floor {speedup_floor:.2f}x, target {speedup_target:.2f}x)",
        f"plan stats: captures={stats['captures']} replays={stats['replays']} "
        f"eager_fallbacks={stats['eager_fallbacks']} "
        f"evictions={stats['guard_evictions']} "
        f"pinned={stats['pinned_bytes'] / 1e6:.1f} MB",
        f"pool hit rate (plan leg): {plan['pool']['hit_rate']:.3f}",
        f"bit-for-bit identical losses + final params: {identical}",
        "",
        "plan-leg allocation profile:",
        plan["memprof_text"],
        "",
        "eager-leg allocation profile:",
        eager["memprof_text"],
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "compile.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "batch_size": BATCH_SIZE,
        "steps": steps,
        "floors": {"speedup": speedup_floor, "target": speedup_target},
        "leg_env": LEG_ENV,
        "eager": {k: v for k, v in eager.items() if k != "memprof_text"},
        "plan": {k: v for k, v in plan.items() if k != "memprof_text"},
        "speedup": {
            "batch_epoch": speedup,
            "full_step": speedup_full,
            "vs_pooled_baseline": speedup_vs_baseline,
            "baseline_src": baseline_src,
            "baseline_epoch_s": baseline_epoch_s,
        },
        "identical": identical,
        "engaged": engaged,
    }
    (ROOT / "BENCH_compile.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not identical:
        print("FAIL: compiled replay diverged from the eager path")
        return 1
    if not engaged:
        print(
            "FAIL: plan leg never engaged "
            f"(captures={stats['captures']} replays={stats['replays']} "
            f"eager_fallbacks={stats['eager_fallbacks']})"
        )
        return 1
    if gated_speedup < speedup_floor:
        print(
            f"FAIL: epoch speedup {gated_speedup:.2f}x "
            f"(vs {baseline_src}) below {speedup_floor:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
