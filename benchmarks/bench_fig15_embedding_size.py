"""Fig. 15: sensitivity to the hetero-graph embedding size d2.

Paper shape: performance is relatively stable across sizes, with a broad
optimum at an intermediate size (paper: 90 on the full data; smaller here
because the city is scaled down) -- too small underfits, too large risks
overfitting.
"""

from common import bench_harness, emit, run_once

from repro.experiments import embedding_size_sweep, format_series

SIZES = (10, 20, 40, 60)


def test_fig15_embedding_size(benchmark):
    config = bench_harness()
    results = run_once(
        benchmark, lambda: embedding_size_sweep(SIZES, config=config)
    )

    emit(
        "fig15",
        format_series(
            "Fig. 15 -- NDCG@3 vs embedding size d2",
            "d2",
            list(SIZES),
            {"NDCG@3": [results[s] for s in SIZES]},
        ),
    )

    values = [results[s] for s in SIZES]
    # Stability: the spread across sizes stays moderate.
    assert max(values) - min(values) < 0.25
    # The best size is not the smallest (insufficient representation).
    assert max(results, key=results.get) != SIZES[0]
