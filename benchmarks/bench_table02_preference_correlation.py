"""Table II: correlation between customer preferences and orders by radius.

Paper shape: correlation > 0.6 ("strongly correlated") at every radius from
1 to 5 km, with only small differences across radii.
"""

from common import emit, motivation_city, run_once

from repro.experiments import format_series, preference_order_correlation


def test_table02_preference_correlation(benchmark):
    sim = motivation_city()
    table = run_once(
        benchmark, lambda: preference_order_correlation(sim, radii_km=(1, 2, 3, 4, 5))
    )

    radii = sorted(table)
    text = format_series(
        "Table II -- Correlation between customer preferences and orders",
        "radius_km",
        [int(r) for r in radii],
        {"correlation": [table[r] for r in radii]},
    )
    emit("table02", text)

    for radius, corr in table.items():
        assert corr > 0.5, f"radius {radius} km: correlation {corr:.3f}"
    # Small differences across radii (paper: 0.710-0.736).
    values = [table[r] for r in radii]
    assert max(values) - min(values) < 0.2
