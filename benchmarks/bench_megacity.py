"""Megacity data plane: columnar orders, tile-parallel sim, streaming graphs.

Fresh-subprocess legs on the 100k-region megacity preset (316x316 grid),
identical except for the ``O2_*`` switches read at import time:

* ``serial`` -- ``O2_ORDER_TABLE=0`` on the shared-stream fast path: the
  pre-columnar data plane (one global RNG sequence, a materialised
  ``List[OrderRecord]``), timed on order generation only;
* ``tiled``  -- the megacity default: per-tile ``SeedSequence`` streams,
  fully vectorised per-tile kernels, one stitched ``OrderTable``.  Spawned
  three times with ``O2_NUM_PROCS`` 1/2/4; the driver asserts all three
  report the same table SHA-256 (worker-count determinism);
* ``graph``  -- tiled sim -> dataset -> streaming banded hetero-graph
  build, with peak RSS gated against a static ceiling: the dense distance
  matrix alone would need ~80 GB at this size;
* ``identity`` -- the paper-scale (16x16 x 14-day) ``O2_FAST_SIM``
  ablation: both arms hash the order stream, the dataset arrays and a
  short fit (loss curve + parameter SHA-256); the driver asserts the arms
  are identical, i.e. the columnar order pipeline changed *nothing*
  observable at paper scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_megacity.py [--quick]

Writes ``benchmarks/results/megacity.txt`` and (full mode)
``BENCH_megacity.json``.  Full mode runs scale 1.0 and enforces the
floors: tiled generation >= 3x the serial leg, graph-build peak RSS under
the ceiling, determinism and identity exact.  ``--quick`` (CI smoke) runs
a reduced-scale live check of every invariant, then validates the
recorded ``BENCH_megacity.json`` against the same floors; it never
overwrites the recorded numbers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import time
from pathlib import Path

import numpy as np

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SPEEDUP_FLOOR = 3.0
# Peak RSS ceiling for the full-scale graph leg (sim + dataset + streaming
# build at 99,856 regions).  Dense distance rows alone would be ~80 GB;
# the recorded banded build peaks at ~2.1 GB, so 4 GB leaves allocator
# headroom while still catching any fallback to dense construction.
GRAPH_RSS_CEILING_MB = 4096.0
FULL_SCALE = 1.0
QUICK_SCALE = 0.22  # 69x69 grid: multi-tile, seconds per leg
IDENTITY_SCALE = 1.0  # the paper-shaped 16x16 real-world preset
IDENTITY_QUICK_SCALE = 0.5
IDENTITY_EPOCHS = 4


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _order_stream_sha(orders) -> str:
    """Digest of an order stream: columnar table SHA, or record-wise."""
    table = getattr(orders, "table", None)
    if table is not None:
        return table.sha256()
    return _record_identity_sha(orders)


def _record_identity_sha(orders) -> str:
    """Digest every record field-for-field (both ablation arms use this).

    Iterates records, so a columnar view and a materialised list of the
    same orders digest identically.
    """
    digest = hashlib.sha256()
    for o in orders:
        digest.update(
            f"{o.order_id}|{o.store_id}|{o.customer_id}|{o.courier_id}".encode()
        )
        digest.update(
            np.array([
                o.store_lon, o.store_lat, o.customer_lon, o.customer_lat,
                o.created_minute, o.accepted_minute, o.pickup_minute,
                o.delivered_minute, o.distance_m,
            ]).tobytes()
        )
        digest.update(
            np.array(
                [o.store_region, o.customer_region, o.store_type],
                dtype=np.int64,
            ).tobytes()
        )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Subprocess legs.
# ---------------------------------------------------------------------------

def _build_city(config):
    """Pre-order stages (land, stores, fleet) -- excluded from sim timing."""
    from repro.city.couriers import build_fleet
    from repro.city.landuse import synthesize_land_use
    from repro.city.orders import OrderGenerator
    from repro.city.stores import place_stores

    rng = np.random.default_rng(config.seed)
    land = synthesize_land_use(config, rng)
    stores = place_stores(config, land, rng)
    fleet = build_fleet(config, land, rng)
    return OrderGenerator(config, land, stores, fleet, rng)


def run_sim_leg(leg: str, scale: float) -> dict:
    """Time order generation (the data-plane hot loop) for one stream mode."""
    from dataclasses import replace

    from repro.city.fastsim import order_table_enabled
    from repro.city.simulator import megacity_config
    from repro.city.tilesim import tile_layout
    from repro.parallel import num_procs
    from repro.runtime import tune_allocator

    tune_allocator()
    config = megacity_config(seed=7, scale=scale)
    if leg == "serial":
        config = replace(config, order_streams="shared")
    gen = _build_city(config)

    started = time.perf_counter()
    orders = gen.generate()
    gen_s = time.perf_counter() - started

    return {
        "leg": leg,
        "scale": scale,
        "regions": int(config.rows * config.cols),
        "tiles": int(tile_layout(config.rows, config.cols).num_tiles),
        "num_procs": int(num_procs()),
        "order_table": bool(order_table_enabled()),
        "num_orders": len(orders),
        "gen_s": gen_s,
        "orders_per_s": len(orders) / gen_s if gen_s > 0 else 0.0,
        "sha": _order_stream_sha(orders),
        "peak_rss_mb": _peak_rss_mb(),
    }


def run_graph_leg(scale: float) -> dict:
    """Tiled sim -> dataset -> streaming hetero-graph build, RSS-gated."""
    from repro.city.simulator import megacity_config, simulate_uncached
    from repro.data.dataset import SiteRecDataset
    from repro.graphs.hetero import build_hetero_multigraph
    from repro.runtime import tune_allocator

    tune_allocator()
    config = megacity_config(seed=7, scale=scale)
    started = time.perf_counter()
    sim = simulate_uncached(config)
    sim_s = time.perf_counter() - started

    started = time.perf_counter()
    dataset = SiteRecDataset.from_simulation(sim)
    dataset_s = time.perf_counter() - started

    started = time.perf_counter()
    graph = build_hetero_multigraph(dataset, streaming=True)
    graph_s = time.perf_counter() - started

    su_edges = sum(len(sub.su_dst_s) for sub in graph.subgraphs.values())
    digest = hashlib.sha256()
    for period in sorted(graph.subgraphs, key=int):
        sub = graph.subgraphs[period]
        digest.update(np.ascontiguousarray(sub.su_dst_s).tobytes())
        digest.update(np.ascontiguousarray(sub.su_attr).tobytes())
    return {
        "leg": "graph",
        "scale": scale,
        "regions": int(config.rows * config.cols),
        "num_orders": len(sim.orders),
        "store_nodes": int(graph.num_store_nodes),
        "customer_nodes": int(graph.num_customer_nodes),
        "su_edges": int(su_edges),
        "sim_s": sim_s,
        "dataset_s": dataset_s,
        "graph_s": graph_s,
        "sha": digest.hexdigest(),
        "peak_rss_mb": _peak_rss_mb(),
    }


def run_identity_leg(scale: float) -> dict:
    """One arm of the paper-scale O2_FAST_SIM ablation (env picks the arm)."""
    from repro.city.fastsim import fast_sim_enabled
    from repro.city.simulator import real_world_config, simulate_uncached
    from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
    from repro.data.dataset import SiteRecDataset
    from repro.nn import init
    from repro.runtime import tune_allocator

    tune_allocator()
    sim = simulate_uncached(real_world_config(seed=7, scale=scale))
    orders_sha = _record_identity_sha(sim.orders)

    dataset = SiteRecDataset.from_simulation(sim)
    features_sha = hashlib.sha256(
        np.ascontiguousarray(dataset.region_features).tobytes()
        + np.ascontiguousarray(dataset.targets).tobytes()
    ).hexdigest()

    split = dataset.split(seed=2)
    init.seed(5)
    model = O2SiteRec(dataset, split, O2SiteRecConfig())
    result = Trainer(model, TrainConfig(epochs=IDENTITY_EPOCHS, lr=5e-3)).fit(
        split.train_pairs, dataset.pair_targets(split.train_pairs)
    )
    params = hashlib.sha256()
    for name, param in model.named_parameters():
        params.update(name.encode())
        params.update(np.ascontiguousarray(param.data).tobytes())
    return {
        "leg": "identity",
        "scale": scale,
        "fast_sim": bool(fast_sim_enabled()),
        "num_orders": len(sim.orders),
        "orders_sha": orders_sha,
        "features_sha": features_sha,
        "train_losses": [float(x) for x in result.train_losses],
        "params_sha": params.hexdigest(),
        "peak_rss_mb": _peak_rss_mb(),
    }


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

LEG_ENV = {
    "serial": {"O2_ORDER_TABLE": "0", "O2_NUM_PROCS": "0"},
    "tiled": {"O2_NUM_PROCS": "1"},
    "tiled_p2": {"O2_NUM_PROCS": "2"},
    "tiled_p4": {"O2_NUM_PROCS": "4"},
    "graph": {},
    "identity_ref": {"O2_FAST_SIM": "0"},
    "identity_fast": {"O2_FAST_SIM": "1"},
}


def spawn_leg(name: str, args) -> dict:
    return common.run_bench_leg(__file__, name, args, env=LEG_ENV[name])


def check_legs(legs: dict) -> None:
    """Invariants shared by quick and full mode (live, every run)."""
    if legs["serial"]["order_table"]:
        raise SystemExit("serial leg unexpectedly columnar")
    if not legs["tiled"]["order_table"]:
        raise SystemExit("tiled leg lost the order table (not the default)")
    if legs["tiled"]["tiles"] < 2:
        raise SystemExit("tiled leg ran on a single tile; scale too small")
    shas = {legs[n]["sha"] for n in ("tiled", "tiled_p2", "tiled_p4")}
    if len(shas) != 1:
        raise SystemExit(
            f"tile-parallel sim is NOT deterministic across worker counts: "
            f"{sorted(s[:16] for s in shas)}"
        )
    ref, fast = legs["identity_ref"], legs["identity_fast"]
    if ref["fast_sim"] or not fast["fast_sim"]:
        raise SystemExit("identity legs did not toggle O2_FAST_SIM")
    for key in ("orders_sha", "features_sha", "train_losses", "params_sha"):
        if ref[key] != fast[key]:
            raise SystemExit(
                f"paper-scale identity broken: {key} differs across the "
                f"O2_FAST_SIM ablation"
            )


def format_report(legs: dict, scale: float, mode: str) -> str:
    serial, tiled, graph = legs["serial"], legs["tiled"], legs["graph"]
    speedup = serial["gen_s"] / tiled["gen_s"]
    lines = [
        "Megacity data plane: columnar orders, tile-parallel sim, "
        "streaming graph",
        f"mode={mode}  scale={scale}  regions={serial['regions']}  "
        f"tiles={tiled['tiles']}",
        "",
        f"{'leg':<10} {'orders':>9} {'gen':>9} {'orders/s':>10} "
        f"{'peak rss':>10} {'sha':>18}",
    ]
    for name in ("serial", "tiled", "tiled_p2", "tiled_p4"):
        leg = legs[name]
        lines.append(
            f"{name:<10} {leg['num_orders']:>9} {leg['gen_s']:>7.2f} s "
            f"{leg['orders_per_s']:>10.0f} {leg['peak_rss_mb']:>7.0f} MB "
            f"{leg['sha'][:16]:>18}"
        )
    lines += [
        "",
        f"tiled generation vs shared-stream serial leg: {speedup:.2f}x"
        + (
            f" (gated, floor {SPEEDUP_FLOOR:.1f}x)"
            if mode == "full"
            else " (reduced scale; floor gated on the recorded run)"
        ),
        f"worker-count determinism (1/2/4 procs): "
        f"{legs['tiled']['sha'] == legs['tiled_p4']['sha']}",
        f"graph leg: {graph['su_edges']} S-U edges over "
        f"{graph['store_nodes']}x{graph['customer_nodes']} nodes in "
        f"{graph['graph_s']:.1f} s (sim {graph['sim_s']:.1f} s, dataset "
        f"{graph['dataset_s']:.1f} s), peak RSS {graph['peak_rss_mb']:.0f} MB"
        + (
            f" (gated, ceiling {GRAPH_RSS_CEILING_MB:.0f} MB)"
            if mode == "full"
            else ""
        ),
        f"paper-scale O2_FAST_SIM ablation: orders, features, "
        f"{IDENTITY_EPOCHS}-epoch loss curve and parameters identical: "
        f"{legs['identity_ref']['params_sha'] == legs['identity_fast']['params_sha']}",
    ]
    return "\n".join(lines)


def validate_recorded(path: Path) -> str:
    """CI gate on the recorded full-mode numbers (quick mode)."""
    if not path.exists():
        return "BENCH_megacity.json: absent (fresh checkout), floors not checked"
    data = json.loads(path.read_text())
    speedup = float(data["speedup"]["tiled_vs_serial"])
    if not data.get("deterministic"):
        raise SystemExit("BENCH_megacity.json records a determinism failure")
    if not data.get("identity"):
        raise SystemExit("BENCH_megacity.json records an identity failure")
    if speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"BENCH_megacity.json speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    rss = float(data["graph"]["peak_rss_mb"])
    if rss > GRAPH_RSS_CEILING_MB:
        raise SystemExit(
            f"BENCH_megacity.json graph peak RSS {rss:.0f} MB exceeds the "
            f"{GRAPH_RSS_CEILING_MB:.0f} MB ceiling"
        )
    return (
        f"BENCH_megacity.json: recorded {speedup:.2f}x at scale="
        f"{data['scale']}, graph peak {rss:.0f} MB -- floors OK"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--leg", choices=sorted(LEG_ENV))
    parser.add_argument("--scale", type=float, default=None)
    ns = parser.parse_args()

    if ns.leg:
        scale = ns.scale if ns.scale is not None else FULL_SCALE
        if ns.leg in ("serial", "tiled", "tiled_p2", "tiled_p4"):
            result = run_sim_leg(
                "serial" if ns.leg == "serial" else "tiled", scale
            )
        elif ns.leg == "graph":
            result = run_graph_leg(scale)
        else:
            result = run_identity_leg(scale)
        print(json.dumps(result))
        return

    quick = ns.quick
    scale = ns.scale if ns.scale is not None else (
        QUICK_SCALE if quick else FULL_SCALE
    )
    id_scale = IDENTITY_QUICK_SCALE if quick else IDENTITY_SCALE

    legs = {}
    for name in ("serial", "tiled", "tiled_p2", "tiled_p4", "graph"):
        legs[name] = spawn_leg(name, ["--scale", scale])
    for name in ("identity_ref", "identity_fast"):
        legs[name] = spawn_leg(name, ["--scale", id_scale])
    check_legs(legs)

    text = format_report(legs, scale, "quick" if quick else "full")
    if quick:
        text += "\n" + validate_recorded(ROOT / "BENCH_megacity.json")
    common.emit("megacity", text)

    speedup = legs["serial"]["gen_s"] / legs["tiled"]["gen_s"]
    if not quick:
        payload = {
            "mode": "full",
            "scale": scale,
            "identity_scale": id_scale,
            "floors": {
                "speedup": SPEEDUP_FLOOR,
                "graph_rss_mb": GRAPH_RSS_CEILING_MB,
            },
            "leg_env": LEG_ENV,
            "deterministic": legs["tiled"]["sha"] == legs["tiled_p2"]["sha"]
            == legs["tiled_p4"]["sha"],
            "identity": legs["identity_ref"]["params_sha"]
            == legs["identity_fast"]["params_sha"],
            "speedup": {
                "tiled_vs_serial": speedup,
                "orders_per_s_tiled": legs["tiled"]["orders_per_s"],
                "orders_per_s_serial": legs["serial"]["orders_per_s"],
            },
            "graph": {
                "graph_s": legs["graph"]["graph_s"],
                "su_edges": legs["graph"]["su_edges"],
                "peak_rss_mb": legs["graph"]["peak_rss_mb"],
            },
            **{name: legs[name] for name in LEG_ENV},
        }
        (ROOT / "BENCH_megacity.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        if speedup < SPEEDUP_FLOOR:
            raise SystemExit(
                f"tiled speedup {speedup:.2f}x is below the "
                f"{SPEEDUP_FLOOR:.1f}x floor"
            )
        if legs["graph"]["peak_rss_mb"] > GRAPH_RSS_CEILING_MB:
            raise SystemExit(
                f"graph peak RSS {legs['graph']['peak_rss_mb']:.0f} MB "
                f"exceeds the {GRAPH_RSS_CEILING_MB:.0f} MB ceiling"
            )


if __name__ == "__main__":
    main()
