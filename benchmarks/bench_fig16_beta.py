"""Fig. 16: sensitivity to the loss trade-off beta (Eq. 17).

Paper shape: overall performance is stable in beta, with the best value at
a small positive beta (paper: 0.2) -- some auxiliary capacity supervision
helps, too much distracts from the main task.
"""

from common import bench_harness, emit, run_once

from repro.experiments import beta_sweep, format_series

BETAS = (0.0, 0.1, 0.2, 0.5, 1.0)


def test_fig16_beta(benchmark):
    config = bench_harness()
    results = run_once(benchmark, lambda: beta_sweep(BETAS, config=config))

    emit(
        "fig16",
        format_series(
            "Fig. 16 -- NDCG@3 vs beta",
            "beta",
            list(BETAS),
            {"NDCG@3": [results[b] for b in BETAS]},
        ),
    )

    values = [results[b] for b in BETAS]
    assert max(values) - min(values) < 0.2, "performance must be stable in beta"
