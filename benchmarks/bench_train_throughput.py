"""Training throughput: reference path vs the fast segment-kernel path.

Two layers of measurement on the real-city preset:

1. *Op microbenchmarks* -- the old kernel compositions (``np.add.at`` /
   ``np.maximum.at`` scatters, the ten-node aggregator chain) against their
   replacements (SegmentPlan bincount/reduceat kernels, the fused
   ``edge_message`` / ``segment_attention`` nodes, and the compiled C
   kernels where available), at the benchmark city's S-U edge shape.
2. *End-to-end epochs* -- each leg runs in a fresh subprocess so allocator
   state and kernel switches cannot leak between them.  The reference leg
   re-creates the pre-optimisation configuration (``O2_FAST_KERNELS=0``,
   ``O2_MALLOC_TUNE=0``, per-period propagation); the fast leg is the
   default configuration.  Both report the paper-faithful batched epoch
   (``paper_train_config``'s batch size, cycling real batches to steady
   state) and the full-batch epoch (one step + one evaluation pass).

Usage::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py [--quick]

Writes a human-readable table to ``benchmarks/results/train.txt`` and a
machine-readable summary to ``BENCH_train.json`` at the repo root.  Exits
non-zero when the fast path misses its floor: 3x on the batched epoch in
full mode (the PR's acceptance bar), 1x (i.e. "not slower") in ``--quick``
mode, whose tiny city and short runs are only a smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

BATCH_SIZE = 128  # paper_train_config().batch_size


# ---------------------------------------------------------------------------
# Subprocess leg: one configuration, fresh interpreter.
# ---------------------------------------------------------------------------

def run_leg(scale: float, steps: int) -> dict:
    """Measure one configuration (selected via env) in this process."""
    from repro.experiments.harness import build_dataset
    from repro.core.model import O2SiteRec
    from repro.nn import init
    from repro.optim import Adam
    from repro.runtime import tune_allocator

    tune_allocator()  # no-op when O2_MALLOC_TUNE=0 (reference leg)

    dataset, split = build_dataset("real", 0, scale)
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)

    rng = np.random.default_rng(0)
    order = rng.permutation(len(pairs))
    batches = np.array_split(order, int(np.ceil(len(pairs) / BATCH_SIZE)))
    batch_data = [
        (np.ascontiguousarray(pairs[sel]), targets[sel]) for sel in batches
    ]

    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    optimizer = Adam(model.parameters(), lr=1e-4)

    first_loss = None
    batch_times = []
    for i in range(steps):
        batch_pairs, batch_targets = batch_data[i % len(batch_data)]
        started = time.perf_counter()
        loss, _, _ = model.loss(batch_pairs, batch_targets)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        batch_times.append((time.perf_counter() - started) * 1e3)
        if first_loss is None:
            first_loss = float(loss.data)
        loss = None  # drop the graph before the next step's allocation burst

    full_steps = max(steps // 2, 3)
    step_times, eval_times = [], []
    for _ in range(full_steps):
        model.train()
        started = time.perf_counter()
        loss, _, _ = model.loss(pairs, targets)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        mid = time.perf_counter()
        loss = None
        model.eval()
        model.predict(pairs)
        done = time.perf_counter()
        step_times.append((mid - started) * 1e3)
        eval_times.append((done - mid) * 1e3)

    steady = lambda xs: float(np.mean(xs[-min(5, len(xs)):]))  # noqa: E731
    batch_step_ms = steady(batch_times)
    full_step_ms = steady(step_times)
    eval_ms = steady(eval_times)
    return {
        "num_pairs": int(len(pairs)),
        "num_batches": len(batch_data),
        "first_batch_loss": first_loss,
        "batch_step_ms": batch_step_ms,
        "batch_epoch_s": batch_step_ms * len(batch_data) / 1e3,
        "full_step_ms": full_step_ms,
        "eval_ms": eval_ms,
        "full_epoch_ms": full_step_ms + eval_ms,
    }


LEG_ENV = {
    # The reference leg reproduces the pre-optimisation execution: in-tree
    # reference kernels, per-period serial propagation, untouched allocator.
    # Both legs pin O2_COMPILE_STEP=0 so the kernel/threading comparison
    # stays eager-vs-eager; bench_compile.py owns the compiled-step story.
    "ref": {
        "O2_FAST_KERNELS": "0",
        "O2_MALLOC_TUNE": "0",
        "O2_NUM_THREADS": "1",
        "O2_COMPILE_STEP": "0",
    },
    "fast": {"O2_NUM_THREADS": "1", "O2_COMPILE_STEP": "0"},
}


def spawn_leg(name: str, scale: float, steps: int) -> dict:
    return common.run_bench_leg(
        __file__, name, ["--scale", scale, "--steps", steps], env=LEG_ENV[name]
    )


# ---------------------------------------------------------------------------
# Op microbenchmarks (in-process).
# ---------------------------------------------------------------------------

def _time_ms(fn, reps: int) -> float:
    fn()  # warm up caches / plan construction
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append((time.perf_counter() - started) * 1e3)
    return float(np.median(times))


def micro_benchmarks(quick: bool) -> list:
    """Old kernel compositions vs their fast-path replacements."""
    from repro.tensor import (
        Tensor,
        concat,
        edge_message,
        gather_rows,
        segment_attention,
        segment_softmax,
        segment_sum,
        use_fast_kernels,
    )
    from repro.tensor.segment import get_plan
    from repro.tensor import cnative

    # Benchmark-city S-U shape (scaled down in quick mode).
    rng = np.random.default_rng(0)
    num_edges = 4096 if quick else 34310
    num_nodes = 256 if quick else 1190
    heads, head_dim = 5, 8
    dim = heads * head_dim
    reps = 5 if quick else 20

    ids = np.sort(rng.integers(0, num_nodes, num_edges)).astype(np.int64)
    values = rng.standard_normal((num_edges, dim))
    rows = []

    # 1. Scatter-add: np.add.at vs SegmentPlan bincount/reduceat.
    def scatter_old():
        out = np.zeros((num_nodes, dim))
        np.add.at(out, ids, values)
        return out

    plan = get_plan(ids, num_nodes)
    rows.append(
        ("scatter-add (E,%d)->(N,%d)" % (dim, dim),
         _time_ms(scatter_old, reps), _time_ms(lambda: plan.sum(values), reps))
    )

    # 2. Segment max: np.maximum.at vs the plan's reduceat kernel.
    scores = rng.standard_normal((num_edges, heads))

    def seg_max_old():
        out = np.full((num_nodes, heads), -np.inf)
        np.maximum.at(out, ids, scores)
        return out

    rows.append(
        ("segment-max (E,%d)" % heads,
         _time_ms(seg_max_old, reps), _time_ms(lambda: plan.max(scores), reps))
    )

    # 3. Aggregator prelude: gather+concat+matmul+relu chain vs edge_message.
    src = rng.integers(0, num_nodes, num_edges).astype(np.int64)
    source = Tensor(rng.standard_normal((num_nodes, dim)), requires_grad=True)
    edge_attr = Tensor(rng.standard_normal((num_edges, 26)), requires_grad=True)
    weight = Tensor(rng.standard_normal((dim + 26, dim)) * 0.1, requires_grad=True)
    bias = Tensor(np.zeros(dim), requires_grad=True)
    grad_out = rng.standard_normal((num_edges, dim))

    def prelude_old():
        with use_fast_kernels(False):
            fused_in = concat([gather_rows(source, src), edge_attr], axis=1)
            out = (fused_in @ weight + bias).relu()
            out.backward(grad_out)

    def prelude_new():
        pre = source @ weight[:dim]
        eproj = edge_attr @ weight[dim:]
        out = edge_message(pre, eproj, bias, src)
        out.backward(grad_out)

    rows.append(
        ("aggregator prelude fwd+bwd",
         _time_ms(prelude_old, reps), _time_ms(prelude_new, reps))
    )

    # 4. Segment attention, forward+backward: the ten-node reference chain
    #    vs the fused node (C kernels when available).
    fused_e = Tensor(rng.standard_normal((num_edges, dim)), requires_grad=True)
    key_w = Tensor(rng.standard_normal((dim, dim)) * 0.1, requires_grad=True)
    queries = Tensor(rng.standard_normal((num_nodes, heads, head_dim)), requires_grad=True)
    scale = 1.0 / np.sqrt(head_dim)
    grad_n = rng.standard_normal((num_nodes, dim))

    def attention_old():
        with use_fast_kernels(False):
            keys = (fused_e @ key_w).reshape(num_edges, heads, head_dim)
            q_edge = gather_rows(
                Tensor(queries.data.reshape(num_nodes, dim)), ids
            ).reshape(num_edges, heads, head_dim)
            att = ((keys * q_edge).sum(axis=2) * scale).leaky_relu(0.2)
            w = segment_softmax(att, ids, num_nodes)
            agg = segment_sum(
                (keys * w.expand_dims(2)).reshape(num_edges, dim), ids, num_nodes
            )
            agg.relu().backward(grad_n)

    def attention_new():
        out = segment_attention(fused_e, key_w, queries, ids, num_nodes, scale)
        out.backward(grad_n)

    label = "segment attention fwd+bwd" + (
        " [C]" if cnative.available() else " [numpy]"
    )
    rows.append((label, _time_ms(attention_old, reps), _time_ms(attention_new, reps)))

    return [
        {"name": name, "old_ms": old, "new_ms": new, "speedup": old / new}
        for name, old, new in rows
    ]


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEG_ENV), help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(run_leg(args.scale, args.steps)))
        return 0

    quick = args.quick
    scale = args.scale if args.scale is not None else (0.3 if quick else 1.0)
    steps = args.steps if args.steps is not None else (6 if quick else 15)
    floor = 1.0 if quick else 3.0

    micro = micro_benchmarks(quick)
    legs = {name: spawn_leg(name, scale, steps) for name in ("ref", "fast")}

    loss_delta = abs(
        legs["ref"]["first_batch_loss"] - legs["fast"]["first_batch_loss"]
    )
    speedup_batch = legs["ref"]["batch_epoch_s"] / legs["fast"]["batch_epoch_s"]
    speedup_full = legs["ref"]["full_epoch_ms"] / legs["fast"]["full_epoch_ms"]

    lines = [
        "Training throughput: reference path vs fast path",
        f"mode={'quick' if quick else 'full'}  scale={scale}  "
        f"batch_size={BATCH_SIZE}  pairs={legs['fast']['num_pairs']}  "
        f"batches/epoch={legs['fast']['num_batches']}",
        "",
        "op microbenchmarks (median ms, old vs new):",
    ]
    for row in micro:
        lines.append(
            f"  {row['name']:<38} {row['old_ms']:8.2f} -> {row['new_ms']:7.2f}"
            f"   {row['speedup']:5.1f}x"
        )
    lines.append("")
    lines.append(
        f"{'leg':<6} {'batch step':>12} {'batch epoch':>12} "
        f"{'full step':>11} {'eval':>9} {'full epoch':>11}"
    )
    for name in ("ref", "fast"):
        leg = legs[name]
        lines.append(
            f"{name:<6} {leg['batch_step_ms']:>9.1f} ms {leg['batch_epoch_s']:>10.2f} s"
            f" {leg['full_step_ms']:>8.1f} ms {leg['eval_ms']:>6.1f} ms"
            f" {leg['full_epoch_ms']:>8.1f} ms"
        )
    lines += [
        "",
        f"speedup: batched epoch {speedup_batch:.2f}x, "
        f"full-batch epoch {speedup_full:.2f}x (floor {floor:.1f}x)",
        f"first-step loss delta ref vs fast: {loss_delta:.3e}",
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "train.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "batch_size": BATCH_SIZE,
        "floor": floor,
        "ref": legs["ref"],
        "fast": legs["fast"],
        "speedup": {"batch_epoch": speedup_batch, "full_epoch": speedup_full},
        "loss_delta": loss_delta,
        "micro": micro,
    }
    (ROOT / "BENCH_train.json").write_text(json.dumps(payload, indent=2) + "\n")

    if loss_delta > 1e-9:
        print(f"FAIL: fast-path loss diverges from reference ({loss_delta:.3e})")
        return 1
    if speedup_batch < floor:
        print(f"FAIL: batched-epoch speedup {speedup_batch:.2f}x below {floor:.1f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
