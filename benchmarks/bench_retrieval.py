"""Retrieve-then-rank serving: the vector index vs the exact full scan.

Four measurement layers, every leg in a fresh subprocess so page-cache
warmth, BLAS thread pools and allocator state cannot leak between
configurations (the BENCH_pipeline driver convention):

1. *Prepare* -- synthesize a deploy-sized snapshot (2k+ candidate regions
   quick, 8k full; hub-clustered embeddings so partitions are
   score-coherent, the regime the index is built for) and write three
   arenas: plain, flat-indexed and IVF-indexed.
2. *Recall sweep* -- recall@10 against the full scan across the
   (retrieve_m, nprobe) grid, averaged over every store type, plus the
   flat mode's exactness pin (recall exactly 1.0).
3. *Latency* -- single-query p50/QPS through ``RecommendationService``:
   the exact full scan on the plain arena vs retrieve-then-rank on the
   IVF arena, plus the bare ``index.search`` cost (the sub-ms claim) and
   a float-for-float equality pin of flat-indexed vs plain results.
4. *Open* -- arena open-time delta, plain vs indexed (the index rides as
   extra mmap segments, so the delta should be header-parsing noise).

Floors (enforced, non-zero exit): recall@10 >= 0.95 at the default
operating point and a >= 3x single-query speedup at 2k+ candidate
regions -- both modes; quick is the CI smoke leg.

Usage::

    PYTHONPATH=src python benchmarks/bench_retrieval.py [--quick]

Writes ``benchmarks/results/retrieval.txt`` and ``BENCH_retrieval.json``
at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

NUM_TYPES = 12
EMBED_DIM = 24
PERIODS = 3
QUERY_K = 10


def _percentile_ms(latencies, p):
    import numpy as np

    return float(np.percentile(np.asarray(latencies), p) * 1e3)


def _synthetic_snapshot(num_regions: int, seed: int):
    """A deploy-sized snapshot with hub-clustered region embeddings.

    Simulating a city with thousands of regions takes minutes; the index
    only sees the frozen arrays, so the bench builds them directly.
    Regions come in clusters around shared hubs (the spatial coherence a
    real city exhibits), which is exactly what makes IVF partitions
    score-coherent and pruning safe.
    """
    import numpy as np

    from repro.serve import ModelSnapshot

    rng = np.random.default_rng(seed)
    num_hubs = max(num_regions // 50, 8)
    hubs = rng.normal(size=(num_hubs, EMBED_DIM))
    member_hub = rng.integers(num_hubs, size=num_regions)
    base = hubs[member_hub] + 0.15 * rng.normal(size=(num_regions, EMBED_DIM))
    # Per-period views share the cluster structure with small drift.
    h = np.stack(
        [base + 0.05 * rng.normal(size=base.shape) for _ in range(PERIODS)],
        axis=0,
    )
    q = rng.normal(size=(PERIODS, NUM_TYPES, EMBED_DIM))

    dim = 3 * EMBED_DIM  # product_channel concatenates h, q, h*q
    hidden = 16
    predictor = [
        (rng.normal(scale=0.3, size=(dim, hidden)), rng.normal(scale=0.1, size=hidden)),
        (rng.normal(scale=0.3, size=(hidden, 1)), rng.normal(scale=0.1, size=1)),
    ]
    return ModelSnapshot(
        h=h,
        q=q,
        pair_commercial=np.zeros((num_regions, NUM_TYPES, 2)),
        store_regions=np.arange(num_regions, dtype=np.int64),
        type_names=[f"type_{t}" for t in range(NUM_TYPES)],
        target_scale=100.0,
        product_channel=True,
        commercial_in_predictor=False,
        time_attention=False,
        time_heads=1,
        time_key_weight=None,
        time_query_weight=None,
        predictor_weights=predictor,
        meta={"bench": "retrieval", "hubs": int(num_hubs)},
    )


# ---------------------------------------------------------------------------
# Subprocess legs.
# ---------------------------------------------------------------------------

def run_prepare_leg(args) -> dict:
    """Build the bench snapshot and its three arenas once."""
    from repro.serve import ModelSnapshot, arena_segments

    out = Path(args.dir)
    snapshot = _synthetic_snapshot(args.regions, seed=17)
    snapshot.save(out / "plain.arena", format="arena")

    started = time.perf_counter()
    flat = snapshot.build_index(kind="flat", retrieve_m=64)
    flat_build_s = time.perf_counter() - started
    snapshot.save(out / "flat.arena", format="arena")

    started = time.perf_counter()
    ivf = snapshot.build_index(kind="ivf", retrieve_m=64)
    ivf_build_s = time.perf_counter() - started
    snapshot.save(out / "ivf.arena", format="arena")

    segments = arena_segments(out / "ivf.arena")
    index_bytes = sum(
        entry["nbytes"]
        for name, entry in segments.items()
        if name.startswith("index__")
    )
    reopened = ModelSnapshot.load(out / "ivf.arena")
    zero_copy = not reopened.index.sheet.flags.owndata

    return {
        "regions": snapshot.num_store_nodes,
        "types": snapshot.num_types,
        "periods": snapshot.num_periods,
        "embedding_dim": snapshot.embedding_dim,
        "partitions": ivf.num_partitions,
        "default_retrieve_m": ivf.retrieve_m,
        "default_nprobe": ivf.nprobe,
        "flat_build_s": flat_build_s,
        "ivf_build_s": ivf_build_s,
        "index_segments": sum(1 for n in segments if n.startswith("index__")),
        "index_mb": index_bytes / 2**20,
        "arena_mb": (out / "ivf.arena").stat().st_size / 2**20,
        "index_zero_copy": zero_copy,
    }


def run_recall_leg(args) -> dict:
    """Recall@10 vs the full scan over the (retrieve_m, nprobe) grid."""
    import numpy as np

    from repro.serve import ModelSnapshot

    snapshot = ModelSnapshot.load(Path(args.dir) / "ivf.arena")
    index = snapshot.index
    types = range(snapshot.num_types)

    def mean_recall(m, nprobe):
        return float(
            np.mean(
                [
                    index.recall_against_full_scan(
                        t, QUERY_K, m=m, nprobe=nprobe
                    )
                    for t in types
                ]
            )
        )

    k = index.num_partitions
    m_grid = [16, 32, 64, 128]
    nprobe_grid = sorted(
        {max(1, k // 8), max(1, k // 4), max(1, k // 2), k}
    )
    grid = [
        {"retrieve_m": m, "nprobe": p, "recall_at_10": mean_recall(m, p)}
        for m in m_grid
        for p in nprobe_grid
    ]

    flat_snapshot = ModelSnapshot.load(Path(args.dir) / "flat.arena")
    flat_recall = float(
        np.mean(
            [
                flat_snapshot.index.recall_against_full_scan(t, QUERY_K)
                for t in types
            ]
        )
    )
    return {
        "grid": grid,
        "default": {
            "retrieve_m": index.retrieve_m,
            "nprobe": index.nprobe,
            "recall_at_10": mean_recall(index.retrieve_m, index.nprobe),
        },
        "flat_recall_at_10": flat_recall,
    }


def run_latency_leg(args) -> dict:
    """Single-query latency/QPS: exact full scan vs retrieve-then-rank.

    Caching and micro-batch windows are disabled so every query pays the
    real scoring cost -- this measures the planes, not the cache.
    """
    import numpy as np

    from repro.serve import ModelSnapshot, RecommendationService

    leg_dir = Path(args.dir)
    service_kwargs = dict(
        cache_entries=0, batch_window_ms=0.0, num_workers=1, default_k=QUERY_K
    )

    def measure(service, reps):
        latencies = [0.0] * reps
        for i in range(reps):
            store_type = i % service.snapshot.num_types
            started = time.perf_counter()
            service.query(store_type, k=QUERY_K)
            latencies[i] = time.perf_counter() - started
        return latencies

    results = {}
    for name, path in (("full_scan", "plain.arena"), ("retrieve", "ivf.arena")):
        with RecommendationService.from_snapshot_file(
            leg_dir / path, **service_kwargs
        ) as service:
            measure(service, min(args.reps, 32))  # warm
            latencies = measure(service, args.reps)
            counters = service.stats()["counters"]
        results[name] = {
            "p50_ms": _percentile_ms(latencies, 50),
            "p99_ms": _percentile_ms(latencies, 99),
            "qps": len(latencies) / sum(latencies),
            "retrievals": int(counters.get("retrievals", 0)),
        }

    # The bare retrieval stage (the sub-ms claim): index.search alone.
    snapshot = ModelSnapshot.load(leg_dir / "ivf.arena")
    index = snapshot.index
    search_lat = [0.0] * args.reps
    for i in range(args.reps):
        store_type = i % snapshot.num_types
        started = time.perf_counter()
        index.search(store_type)
        search_lat[i] = time.perf_counter() - started
    results["index_search"] = {
        "p50_ms": _percentile_ms(search_lat, 50),
        "p99_ms": _percentile_ms(search_lat, 99),
    }

    # Equality pin: the flat-indexed service must reproduce the plain
    # service's top-k float for float (same regions, same score bits).
    with RecommendationService.from_snapshot_file(
        leg_dir / "plain.arena", **service_kwargs
    ) as exact, RecommendationService.from_snapshot_file(
        leg_dir / "flat.arena", **service_kwargs
    ) as flat:
        equal = True
        for store_type in range(exact.snapshot.num_types):
            a = exact.query(store_type, k=QUERY_K)
            b = flat.query(store_type, k=QUERY_K)
            if [(r.region, r.score) for r in a] != [
                (r.region, r.score) for r in b
            ]:
                equal = False
                break
    results["flat_equal"] = equal
    results["speedup_p50"] = (
        results["full_scan"]["p50_ms"] / results["retrieve"]["p50_ms"]
    )
    return results


def run_open_leg(args) -> dict:
    """Arena open time, plain vs indexed: the delta should be noise."""
    import numpy as np

    from repro.serve import ModelSnapshot

    def time_open(path, reps):
        times = [0.0] * reps
        for i in range(reps):
            started = time.perf_counter()
            ModelSnapshot.load(path)
            times[i] = time.perf_counter() - started
        return float(np.median(times))

    plain_s = time_open(Path(args.dir) / "plain.arena", args.reps)
    indexed_s = time_open(Path(args.dir) / "ivf.arena", args.reps)
    return {
        "plain_ms": plain_s * 1e3,
        "indexed_ms": indexed_s * 1e3,
        "delta_ms": (indexed_s - plain_s) * 1e3,
        "reps": args.reps,
    }


LEGS = {
    "prepare": run_prepare_leg,
    "recall": run_recall_leg,
    "latency": run_latency_leg,
    "open": run_open_leg,
}


def spawn_leg(name: str, extra: list) -> dict:
    return common.run_bench_leg(__file__, name, extra)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEGS), help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--regions", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None)
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(LEGS[args.leg](args)))
        return 0

    quick = args.quick
    # The >= 3x speedup floor is asserted "at 2k+ candidate regions", so
    # even the CI smoke leg stays above that scale.
    regions = args.regions or (2400 if quick else 8000)
    reps = args.reps or (200 if quick else 600)
    floor_recall = 0.95
    floor_speedup = 3.0

    with tempfile.TemporaryDirectory(
        prefix=".bench-retrieval-", dir=str(ROOT)
    ) as tmp_dir:
        common = ["--dir", tmp_dir]
        prepare = spawn_leg(
            "prepare", common + ["--regions", str(regions)]
        )
        recall = spawn_leg("recall", common)
        latency = spawn_leg("latency", common + ["--reps", str(reps)])
        opened = spawn_leg(
            "open", common + ["--reps", str(5 if quick else 15)]
        )

    default = recall["default"]
    full = latency["full_scan"]
    retrieve = latency["retrieve"]
    search = latency["index_search"]

    lines = [
        "Retrieve-then-rank serving -- vector index vs exact full scan",
        f"mode={'quick' if quick else 'full'}  snapshot: "
        f"{prepare['regions']} regions, {prepare['types']} types, "
        f"{prepare['periods']} periods, d2={prepare['embedding_dim']}",
        f"index: {prepare['partitions']} partitions, "
        f"retrieve_m={prepare['default_retrieve_m']}, "
        f"nprobe={prepare['default_nprobe']}, "
        f"{prepare['index_mb']:.2f}MB in {prepare['index_segments']} arena "
        f"segments (build {prepare['ivf_build_s']:.2f}s, "
        f"{'zero-copy mmap' if prepare['index_zero_copy'] else 'COPIED'})",
        "",
        f"recall@10 vs full scan  (default operating point: "
        f"m={default['retrieve_m']}, nprobe={default['nprobe']} -> "
        f"{default['recall_at_10']:.3f}, floor {floor_recall:.2f}; "
        f"flat mode {recall['flat_recall_at_10']:.3f})",
        f"{'retrieve_m':>12}" + "".join(
            f"{'np=' + str(p): >10}"
            for p in sorted({row['nprobe'] for row in recall['grid']})
        ),
    ]
    nprobes = sorted({row["nprobe"] for row in recall["grid"]})
    for m in sorted({row["retrieve_m"] for row in recall["grid"]}):
        cells = {
            row["nprobe"]: row["recall_at_10"]
            for row in recall["grid"]
            if row["retrieve_m"] == m
        }
        lines.append(
            f"{m:>12}" + "".join(f"{cells[p]:>10.3f}" for p in nprobes)
        )
    lines += [
        "",
        f"{'leg':<26}{'p50 ms':>10}{'p99 ms':>10}{'QPS':>10}",
        f"{'exact full scan':<26}{full['p50_ms']:>10.3f}"
        f"{full['p99_ms']:>10.3f}{full['qps']:>10.0f}",
        f"{'retrieve-then-rank':<26}{retrieve['p50_ms']:>10.3f}"
        f"{retrieve['p99_ms']:>10.3f}{retrieve['qps']:>10.0f}",
        f"{'index.search alone':<26}{search['p50_ms']:>10.3f}"
        f"{search['p99_ms']:>10.3f}{'':>10}",
        "",
        f"single-query speedup: {latency['speedup_p50']:.2f}x "
        f"(floor {floor_speedup:.1f}x at {prepare['regions']} regions)",
        f"flat-indexed top-{QUERY_K}: "
        f"{'float-for-float equal to full scan' if latency['flat_equal'] else 'DIVERGES'}",
        f"arena open: plain {opened['plain_ms']:.3f}ms vs indexed "
        f"{opened['indexed_ms']:.3f}ms (delta {opened['delta_ms']:+.3f}ms)",
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "retrieval.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "regions": regions,
        "reps": reps,
        "query_k": QUERY_K,
        "prepare": prepare,
        "recall": recall,
        "latency": latency,
        "open": opened,
        "floors": {"recall_at_10": floor_recall, "speedup": floor_speedup},
    }
    (ROOT / "BENCH_retrieval.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not latency["flat_equal"]:
        print("FAIL: flat-indexed top-k diverges from the exact full scan")
        return 1
    if not prepare["index_zero_copy"]:
        print("FAIL: index segments were copied out of the arena mmap")
        return 1
    if recall["flat_recall_at_10"] < 1.0:
        print("FAIL: flat mode must have recall exactly 1.0")
        return 1
    if default["recall_at_10"] < floor_recall:
        print(
            f"FAIL: recall@10 {default['recall_at_10']:.3f} below "
            f"{floor_recall:.2f} at the default operating point"
        )
        return 1
    if latency["speedup_p50"] < floor_speedup:
        print(
            f"FAIL: retrieve-then-rank speedup {latency['speedup_p50']:.2f}x "
            f"below {floor_speedup:.1f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
