"""Shared benchmark infrastructure.

Each bench regenerates one paper table/figure: it computes the experiment
once (timed through pytest-benchmark's pedantic single-round mode -- these
are experiments, not microbenchmarks), prints the paper-shaped rows, and
writes them to ``benchmarks/results/<id>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"

# Benchmark scale knobs, overridable from the environment:
#   REPRO_BENCH_SCALE=1.0 REPRO_BENCH_ROUNDS=3 pytest benchmarks/ ...
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.55"))
BENCH_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "45"))


def bench_harness():
    """The harness configuration every model-comparison bench uses."""
    # Deferred import: the standalone bench drivers import this module for
    # run_bench_leg before PYTHONPATH necessarily exposes the package.
    from repro.experiments import HarnessConfig

    return HarnessConfig(
        rounds=BENCH_ROUNDS,
        scale=BENCH_SCALE,
        epochs=BENCH_EPOCHS,
        patience=max(BENCH_EPOCHS // 4, 5),
    )


@functools.lru_cache(maxsize=1)
def motivation_city():
    """One simulated month shared by the motivation benches (Figs. 1-5).

    ``real_world_dataset`` routes through the pipeline artifact cache
    (``O2_PIPELINE_CACHE``), so across bench *processes* the month is
    simulated once and replayed from disk thereafter; the ``lru_cache``
    only deduplicates within a process.
    """
    from repro.city import real_world_dataset

    return real_world_dataset(seed=7, scale=max(BENCH_SCALE, 0.7))


def cached_dataset(kind: str, seed: int = 0, scale: float | None = None):
    """The (dataset, split) a harness round would build, cache-served.

    Every bench that needs a ready-to-train dataset goes through here (and
    so through :func:`repro.data.cache.cached_dataset`) instead of
    hand-rolling ``SiteRecDataset.from_simulation`` -- one artifact on disk
    feeds them all.  ``scale`` defaults to the suite's ``BENCH_SCALE``.
    """
    from repro.data.cache import cached_dataset as _cached

    return _cached(kind, seed, BENCH_SCALE if scale is None else scale)


def emit(experiment_id: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_bench_leg(script, leg: str, args=(), env=None) -> dict:
    """Run one benchmark leg in a fresh interpreter and harvest its JSON.

    The throughput drivers (``bench_train_throughput``, ``bench_memory``,
    ``bench_compile``, ...) compare execution modes that are selected by
    ``O2_*`` environment switches read at import time, so each leg must be
    a brand-new process: the driver re-executes ``script`` with ``--leg
    <name>`` plus ``args``, overlaying ``env`` on the inherited environment
    and pinning ``PYTHONPATH`` to the in-tree package.  The leg prints a
    single JSON object as its final stdout line; that object is returned.
    Any non-zero exit raises with both output streams attached.
    """
    leg_env = dict(os.environ)
    if env:
        leg_env.update(env)
    leg_env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, os.fspath(script), "--leg", leg, *map(str, args)],
        env=leg_env,
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{leg} leg failed:\n{proc.stdout}\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])
