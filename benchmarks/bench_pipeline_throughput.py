"""Data-plane throughput: reference pipeline vs fast sim + artifact cache.

Three layers of measurement, every leg in a fresh subprocess so kernel
switches, allocator state and in-process memoisation cannot leak between
configurations:

1. *Simulation* -- one real-preset month, reference per-order loop
   (``O2_FAST_SIM=0``) vs the columnar fast path.  Both legs hash their
   order log; the hashes must match bit-for-bit (the fast path is a
   reformulation, not an approximation).
2. *Table data plane* -- the dataset builds behind a quick-harness
   comparison (one per round) plus the bench suite's repeated requests for
   the shared city (pre-PR, every bench process re-simulated it).  Legs:

   * ``table_ref``  -- pre-PR configuration: reference sim, no cache;
   * ``table_cold`` -- fast sim + a fresh cache directory (first build
     simulates, repeats replay from disk);
   * ``table_warm`` -- same cache directory, re-run (everything replays).

3. *Fan-out correctness* -- a small two-cell comparison table run serially
   and through the ``O2_NUM_PROCS`` process pool; the rows must be
   identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline_throughput.py [--quick]

Writes a human-readable table to ``benchmarks/results/pipeline.txt`` and a
machine-readable summary to ``BENCH_pipeline.json`` at the repo root.
Exits non-zero when the order logs diverge, the fan-out table differs from
serial, the cold-cache leg misses its floor (3x in full mode, 1x in
``--quick``), or the warm-cache leg misses its floor (10x full, 2x quick).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

TABLE_ROUNDS = 2  # quick_harness().rounds
SHARED_REQUESTS = 5  # distinct bench processes wanting the same city


# ---------------------------------------------------------------------------
# Subprocess legs: one configuration each, fresh interpreter.
# ---------------------------------------------------------------------------

def run_sim_leg(scale: float) -> dict:
    """Simulate one real-preset month; hash the order log bit-for-bit.

    The hash runs over the cache module's canonical columnar packing, which
    coerces every field to its declared dtype -- the fast path may hand
    back Python floats where the reference loop kept numpy scalars, and
    those must hash the same when their values are bit-identical.
    """
    import hashlib

    from repro.city.simulator import real_world_config, simulate
    from repro.data.cache import _orders_to_arrays

    config = real_world_config(seed=7, scale=scale)
    started = time.perf_counter()
    sim = simulate(config)
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256()
    arrays = _orders_to_arrays(sim.orders)
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return {
        "seconds": elapsed,
        "orders": sim.num_orders,
        "sha256": digest.hexdigest(),
    }


def run_table_leg(scale: float, rounds: int, requests: int) -> dict:
    """The dataset builds behind a harness table + the bench suite's shares.

    ``rounds`` distinct (seed, scale) datasets -- what ``compare_models``
    builds -- then ``requests`` repeated asks for the round-0 dataset,
    standing in for the bench scripts that each want the same city in their
    own process (so an in-process ``lru_cache`` could not have deduplicated
    them; only the on-disk artifact cache can).
    """
    from repro.data.cache import cache_stats
    from repro.experiments.harness import build_dataset

    started = time.perf_counter()
    total_targets = 0
    for r in range(rounds):
        dataset, _ = build_dataset("real", r, scale)
        total_targets += int(dataset.targets.shape[0])
    for _ in range(requests):
        dataset, _ = build_dataset("real", 0, scale)
        total_targets += int(dataset.targets.shape[0])
    elapsed = time.perf_counter() - started

    stats = cache_stats()
    return {
        "seconds": elapsed,
        "builds": rounds + requests,
        "targets": total_targets,
        "cache_entries": int(stats["entries"]),
        "cache_bytes": int(stats["bytes"]),
    }


def run_procs_leg(scale: float) -> dict:
    """Serial vs process-pool harness table; rows must match exactly."""
    from repro import parallel
    from repro.experiments.harness import HarnessConfig, compare_models

    config = HarnessConfig(rounds=2, scale=scale, epochs=3, patience=3)
    kwargs = dict(baselines=("GC-MC",), settings=("adaption",))

    started = time.perf_counter()
    serial = compare_models("real", config, **kwargs)
    mid = time.perf_counter()
    with parallel.use_num_procs(2):
        fanned = compare_models("real", config, **kwargs)
    done = time.perf_counter()

    identical = list(serial.rows) == list(fanned.rows) and all(
        serial.rows[k].series(m).tolist() == fanned.rows[k].series(m).tolist()
        for k in serial.rows
        for m in serial.metrics
    )
    return {
        "serial_s": mid - started,
        "fanned_s": done - mid,
        "procs": 2,
        "cells": 2 * config.rounds,
        "identical": identical,
    }


LEGS = {
    # Simulation legs never touch the cache: they time the generators.
    "sim_ref": {"O2_FAST_SIM": "0", "O2_PIPELINE_CACHE": "0"},
    "sim_fast": {"O2_FAST_SIM": "1", "O2_PIPELINE_CACHE": "0"},
    # The pre-PR data plane: reference sim, nothing cached anywhere.
    "table_ref": {"O2_FAST_SIM": "0", "O2_PIPELINE_CACHE": "0"},
    # Cache dir is injected by the driver (fresh for cold, reused for warm).
    "table_cold": {"O2_FAST_SIM": "1"},
    "table_warm": {"O2_FAST_SIM": "1"},
    "procs": {"O2_FAST_SIM": "1"},
}


def spawn_leg(name: str, args: list, cache_dir: str | None = None) -> dict:
    env = dict(LEGS[name])
    if cache_dir is not None:
        env["O2_PIPELINE_CACHE"] = cache_dir
    return common.run_bench_leg(__file__, name, args, env=env)


def run_leg(name: str, args: argparse.Namespace) -> dict:
    if name.startswith("sim"):
        return run_sim_leg(args.scale)
    if name.startswith("table"):
        return run_table_leg(args.scale, args.rounds, args.requests)
    return run_procs_leg(args.scale)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEGS), help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--rounds", type=int, default=TABLE_ROUNDS)
    parser.add_argument("--requests", type=int, default=SHARED_REQUESTS)
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(run_leg(args.leg, args)))
        return 0

    quick = args.quick
    sim_scale = 0.35 if quick else 1.0
    table_scale = args.scale if args.scale is not None else (
        0.35 if quick else 0.55  # quick_harness().scale in full mode
    )
    requests = 3 if quick else SHARED_REQUESTS
    procs_scale = 0.35 if quick else 0.45
    floor_cold = 1.0 if quick else 3.0
    floor_warm = 2.0 if quick else 10.0

    sim = {
        name: spawn_leg(name, ["--scale", str(sim_scale)])
        for name in ("sim_ref", "sim_fast")
    }

    table_args = [
        "--scale", str(table_scale),
        "--rounds", str(TABLE_ROUNDS),
        "--requests", str(requests),
    ]
    cache_dir = tempfile.mkdtemp(prefix=".bench-pipeline-cache-", dir=str(ROOT))
    try:
        table = {"table_ref": spawn_leg("table_ref", table_args)}
        table["table_cold"] = spawn_leg("table_cold", table_args, cache_dir)
        table["table_warm"] = spawn_leg("table_warm", table_args, cache_dir)
        procs = spawn_leg("procs", ["--scale", str(procs_scale)], cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    sim_speedup = sim["sim_ref"]["seconds"] / sim["sim_fast"]["seconds"]
    sim_identical = sim["sim_ref"]["sha256"] == sim["sim_fast"]["sha256"]
    speedup_cold = table["table_ref"]["seconds"] / table["table_cold"]["seconds"]
    speedup_warm = table["table_ref"]["seconds"] / table["table_warm"]["seconds"]
    cold_entries = table["table_cold"]["cache_entries"]
    warm_entries = table["table_warm"]["cache_entries"]

    lines = [
        "Pipeline throughput: reference data plane vs fast sim + artifact cache",
        f"mode={'quick' if quick else 'full'}  sim_scale={sim_scale}  "
        f"table_scale={table_scale}  rounds={TABLE_ROUNDS}  "
        f"shared_requests={requests}",
        "",
        f"{'leg':<12} {'seconds':>9}   detail",
        f"{'sim_ref':<12} {sim['sim_ref']['seconds']:>9.2f}   "
        f"{sim['sim_ref']['orders']} orders (per-order reference loop)",
        f"{'sim_fast':<12} {sim['sim_fast']['seconds']:>9.2f}   "
        f"{sim['sim_fast']['orders']} orders, {sim_speedup:.2f}x, "
        f"order log {'identical' if sim_identical else 'DIVERGES'}",
        f"{'table_ref':<12} {table['table_ref']['seconds']:>9.2f}   "
        f"{table['table_ref']['builds']} dataset builds, no cache",
        f"{'table_cold':<12} {table['table_cold']['seconds']:>9.2f}   "
        f"fresh cache: {cold_entries} entries written, "
        f"{speedup_cold:.2f}x (floor {floor_cold:.1f}x)",
        f"{'table_warm':<12} {table['table_warm']['seconds']:>9.2f}   "
        f"warm cache: {warm_entries} entries reused, "
        f"{speedup_warm:.2f}x (floor {floor_warm:.1f}x)",
        "",
        f"fan-out: {procs['cells']} cells, serial {procs['serial_s']:.2f}s vs "
        f"{procs['procs']} procs {procs['fanned_s']:.2f}s, table "
        f"{'identical' if procs['identical'] else 'DIVERGES'}",
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "pipeline.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "sim_scale": sim_scale,
        "table_scale": table_scale,
        "rounds": TABLE_ROUNDS,
        "shared_requests": requests,
        "floors": {"cold": floor_cold, "warm": floor_warm},
        "sim": {**sim, "speedup": sim_speedup, "identical": sim_identical},
        "table": table,
        "speedup": {"cold": speedup_cold, "warm": speedup_warm},
        "procs": procs,
    }
    (ROOT / "BENCH_pipeline.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not sim_identical:
        print("FAIL: fast-sim order log diverges from the reference")
        return 1
    if not procs["identical"]:
        print("FAIL: process-pool table diverges from the serial run")
        return 1
    if cold_entries == 0:
        print("FAIL: cold leg wrote no cache entries (cache never engaged)")
        return 1
    if warm_entries != cold_entries:
        print(
            f"FAIL: warm leg changed the cache ({cold_entries} -> "
            f"{warm_entries} entries); expected pure hits"
        )
        return 1
    if speedup_cold < floor_cold:
        print(f"FAIL: cold speedup {speedup_cold:.2f}x below {floor_cold:.1f}x")
        return 1
    if speedup_warm < floor_warm:
        print(f"FAIL: warm speedup {speedup_warm:.2f}x below {floor_warm:.1f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
