"""Figs. 12/13: results for six highlighted store types.

Paper shape: O2-SiteRec performs well across types, with smaller variation
across types than the baselines (HGT, GraphRec).
"""

import numpy as np

from common import bench_harness, emit, run_once

from repro.experiments import FOCUS_TYPES, format_bar_groups, per_type_results


def test_fig12_13_store_types(benchmark):
    config = bench_harness()
    results = run_once(benchmark, lambda: per_type_results(config=config))

    types = [t for t in FOCUS_TYPES if t in results["O2-SiteRec"]]
    emit(
        "fig12_13",
        format_bar_groups(
            "Figs. 12/13 -- NDCG@3 by store type",
            types,
            {
                model: [values.get(t, float("nan")) for t in types]
                for model, values in results.items()
            },
        ),
    )

    ours = np.array([results["O2-SiteRec"][t] for t in types])
    for name in ("HGT", "GraphRec"):
        theirs = np.array([results[name][t] for t in types])
        wins = (ours >= theirs - 1e-9).sum()
        assert wins >= len(types) - 2, (
            f"O2-SiteRec should lead {name} on most types ({wins}/{len(types)})"
        )
