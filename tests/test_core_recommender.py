"""HeteroRecommender internals: time attention, propagation, dimensions."""

import numpy as np
import pytest

from repro.core.recommender import HeteroRecommender, _TimeSemanticsAttention
from repro.graphs import build_hetero_multigraph
from repro.nn import init
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def graph(micro_dataset, micro_split):
    return build_hetero_multigraph(micro_dataset, split=micro_split)


@pytest.fixture()
def recommender(graph):
    init.seed(0)
    return HeteroRecommender(graph, d2=20, node_heads=5, time_heads=2)


class TestTimeSemanticsAttention:
    def test_output_shape(self):
        init.seed(1)
        att = _TimeSemanticsAttention(dim=12, num_heads=2)
        stacked = Tensor(np.random.default_rng(0).normal(size=(5, 7, 12)))
        out = att(stacked)
        assert out.shape == (7, 12)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            _TimeSemanticsAttention(dim=10, num_heads=3)

    def test_constant_periods_equal_any_period(self):
        init.seed(1)
        att = _TimeSemanticsAttention(dim=8, num_heads=2)
        row = np.random.default_rng(2).normal(size=(3, 8))
        stacked = Tensor(np.broadcast_to(row, (5, 3, 8)).copy())
        out = att(stacked).data
        single = att(Tensor(row[None].repeat(5, axis=0))).data
        assert np.allclose(out, single)

    def test_gradients_flow(self):
        init.seed(1)
        att = _TimeSemanticsAttention(dim=8, num_heads=2)
        stacked = Tensor(
            np.random.default_rng(3).normal(size=(5, 4, 8)), requires_grad=True
        )
        att(stacked).sum().backward()
        assert stacked.grad is not None
        assert att.key_proj.weight.grad is not None


class TestRecommender:
    def test_head_divisibility_enforced(self, graph):
        with pytest.raises(ValueError):
            HeteroRecommender(graph, d2=21, node_heads=5)

    def test_forward_shape(self, recommender, graph):
        k = 7
        s_idx = np.arange(k) % graph.num_store_nodes
        types = np.arange(k) % graph.num_types
        out = recommender(s_idx, types)
        assert out.shape == (k,)

    def test_same_region_different_types_differ(self, recommender, graph):
        recommender.eval()
        s_idx = np.zeros(2, dtype=np.int64)
        types = np.array([0, 1])
        out = recommender(s_idx, types).numpy()
        assert out[0] != out[1]

    def test_dense_commercial_lookup(self, recommender, graph):
        dense = recommender._pair_commercial
        assert dense.shape == (graph.num_store_nodes, graph.num_types, 2)
        # An existing S-A edge's attributes appear at its dense slot.
        s, a = int(graph.sa_src_s[0]), int(graph.sa_dst_a[0])
        assert np.allclose(dense[s, a], graph.sa_attr[0, :2])

    def test_without_preferences_ignores_su_edges(self, graph):
        init.seed(3)
        model = HeteroRecommender(
            graph, d2=20, node_heads=5, use_preferences=False
        )
        model.eval()
        s_idx = np.arange(3, dtype=np.int64)
        types = np.zeros(3, dtype=np.int64)
        out = model(s_idx, types)
        assert out.shape == (3,)
