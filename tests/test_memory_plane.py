"""Memory plane: buffer pool, in-place accumulation, tape retirement.

Four layers of guarantees, matching what the memory plane promises:

* the pool itself recycles blocks only when every view (including derived
  reshapes/slices that escape into closures) has died, bypasses tiny
  requests, grows per-size buckets and honours its idle cap;
* pooled-path training is bit-for-bit identical to the reference
  allocation path -- fuzzed over randomized autograd graphs with shared
  subexpressions under both ``O2_FAST_KERNELS`` settings, and pinned at
  whole-model fit-curve granularity;
* the in-place fused Adam/SGD/clip updates reproduce the reference
  expressions exactly (same floating-point operation order);
* ``backward(free_graph=True)`` retires the tape: outstanding pool
  buffers return to baseline and intermediate nodes drop their
  ``_parents``/``_backward`` links.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.nn import init
from repro.nn.module import Parameter
from repro.optim import SGD, Adam
from repro.optim.optimizer import clip_grad_norm
from repro.tensor import (
    BufferPool,
    Tensor,
    buffer_pool_enabled,
    gather_rows,
    memprof,
    pool,
    segment_softmax,
    segment_sum,
    use_buffer_pool,
    use_fast_kernels,
)


def _drain():
    """Collect cycles so weakref finalizers run deterministically."""
    gc.collect()


class TestBufferPool:
    def test_borrow_shape_dtype_and_write(self):
        p = BufferPool()
        a = p.borrow((64, 16))
        assert a.shape == (64, 16) and a.dtype == np.float64
        a[:] = 3.0
        assert float(a.sum()) == 64 * 16 * 3.0

    def test_recycle_on_last_reference_death(self):
        p = BufferPool()
        a = p.borrow((64, 16))
        assert p.outstanding() == 1
        del a
        _drain()
        assert p.outstanding() == 0
        stats = p.stats()
        assert stats["recycled"] == 1 and stats["idle_buffers"] == 1
        b = p.borrow((64, 16))
        assert p.stats()["hits"] == 1
        del b

    def test_derived_views_keep_block_alive(self):
        """A reshape/column view must pin the block even after the
        original borrowed array is dropped -- the historical failure mode
        of ``weights[:, 0]`` escaping from segment_softmax."""
        p = BufferPool()
        a = p.borrow((64, 16))
        a[:] = 7.0
        col = a.reshape(16, 64)[0]
        del a
        _drain()
        assert p.outstanding() == 1  # block still borrowed
        # A fresh borrow of the same bucket must not alias the live view.
        b = p.borrow((64, 16))
        b.fill(0.0)
        assert np.all(col == 7.0)
        del b, col
        _drain()
        assert p.outstanding() == 0

    def test_best_fit_buckets(self):
        p = BufferPool()
        for count in (600, 1025, 5000):
            a = p.borrow((count,))
            del a
        _drain()
        stats = p.stats()
        assert stats["idle_buffers"] == 3
        # Blocks are allocated at the requested size: no rounding waste.
        assert stats["idle_bytes"] == (600 + 1025 + 5000) * 8
        # An exact repeat hits its capacity; a slightly smaller request
        # best-fits into the smallest sufficient block; a request with no
        # block within the slack bound misses rather than waste a huge one.
        b = p.borrow((1025,))  # exact 8200 B hit
        c = p.borrow((550,))  # 4400 B into the idle 4800 B block
        d = p.borrow((700,))  # 5600 B: only 40000 B left, > 2x -> miss
        s = p.stats()
        assert s["hits"] == 2 and s["fit_hits"] == 1 and s["misses"] == 4
        # The handed-out view exposes the requested count, not the block's.
        assert c.size == 550 and c.base.nbytes == 550 * 8
        del b, c, d

    def test_min_bytes_bypass(self):
        p = BufferPool(min_bytes=4096)
        a = p.borrow((8, 8))  # 512 B < 4 KiB
        assert not p.owns(a)
        assert p.stats()["bypassed"] == 1
        assert p.outstanding() == 0

    def test_idle_cap_evicts(self):
        p = BufferPool(max_idle_bytes=1024 * 8)
        a = p.borrow((1024,))
        b = p.borrow((1024,))
        del a, b
        _drain()
        stats = p.stats()
        assert stats["evicted"] == 1
        assert stats["idle_bytes"] <= 1024 * 8

    def test_explicit_release(self):
        p = BufferPool()
        a = p.borrow((1024,))
        assert p.owns(a)
        assert p.release(a)
        assert p.outstanding() == 0
        assert not p.release(np.empty(1024))  # foreign arrays refused

    def test_zeros_and_take_rows_match_numpy(self):
        rng = np.random.default_rng(0)
        src = rng.standard_normal((300, 8))
        idx = rng.integers(0, 300, 700)
        for enabled in (False, True):
            with use_buffer_pool(enabled):
                assert np.array_equal(
                    pool.zeros((128, 9)), np.zeros((128, 9))
                )
                assert np.array_equal(pool.take_rows(src, idx), src[idx])

    def test_out_buffer_is_none_when_disabled(self):
        with use_buffer_pool(False):
            assert pool.out_buffer((512, 4)) is None
        with use_buffer_pool(True):
            buf = pool.out_buffer((512, 4))
            assert buf is not None and buf.shape == (512, 4)


def _random_graph_loss(seed: int, free_graph: bool):
    """A randomized small graph with diamonds and shared subexpressions.

    Returns the loss value and every leaf gradient; used to fuzz the
    pooled path against the reference path bit for bit.
    """
    rng = np.random.default_rng(seed)
    n, d, e, s = 40, 12, 90, 15
    W = Tensor(rng.standard_normal((d, d)) * 0.3, requires_grad=True)
    X = Tensor(rng.standard_normal((n, d)), requires_grad=True)
    b = Tensor(rng.standard_normal(d), requires_grad=True)
    idx = rng.integers(0, n, e)
    seg = rng.integers(0, s, e)
    if seed % 2:
        seg = np.sort(seg)

    h = (X @ W + b).relu()
    g = gather_rows(h, idx)
    shared = g * g  # diamond: both branches consume `shared`
    branch_a = segment_sum(shared.exp().leaky_relu(0.1), seg, s)
    branch_b = shared + g / (shared.sum(axis=1, keepdims=True) + 2.0)
    att = segment_softmax(branch_b.sum(axis=1), seg, s)
    sliced = branch_a[: s // 2]
    loss = sliced.sum() * 0.25 + att.sum() - (h - 0.5).sum() / 7.0
    loss.backward(free_graph=free_graph)
    return (
        float(loss.data),
        W.grad.copy(),
        X.grad.copy(),
        b.grad.copy(),
    )


class TestPooledPathEquivalence:
    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "reference"])
    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_bitwise_vs_reference(self, fast, seed):
        with use_fast_kernels(fast):
            with use_buffer_pool(False):
                ref = _random_graph_loss(seed, free_graph=False)
            with use_buffer_pool(True):
                pooled = _random_graph_loss(seed, free_graph=False)
                retired = _random_graph_loss(seed, free_graph=True)
        assert ref[0] == pooled[0] == retired[0]
        for r, p, t in zip(ref[1:], pooled[1:], retired[1:]):
            np.testing.assert_array_equal(r, p)
            np.testing.assert_array_equal(r, t)

    def test_leaf_grad_buffer_reused_across_steps(self):
        with use_buffer_pool(True):
            t = Tensor(np.random.default_rng(3).standard_normal((600, 4)),
                       requires_grad=True)
            ((t * t).sum()).backward()
            first = t.grad
            t.zero_grad()
            assert t.grad is None  # the `grad is None` contract survives
            ((t * 2.0).sum()).backward()
            assert t.grad is first  # same buffer, overwritten in place


def _make_params(rng, with_grads=True):
    params = [
        Parameter(rng.standard_normal((64, 16))),
        Parameter(rng.standard_normal((128,))),
        Parameter(rng.standard_normal((8, 8, 4))),
    ]
    if with_grads:
        for p in params:
            p.grad = rng.standard_normal(p.data.shape)
    return params


class TestInPlaceOptimizers:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_bitwise(self, weight_decay):
        results = {}
        for enabled in (False, True):
            rng = np.random.default_rng(11)
            params = _make_params(rng)
            with use_buffer_pool(enabled):
                opt = Adam(params, lr=1e-3, weight_decay=weight_decay)
                for _ in range(5):
                    for p in params:
                        p.grad = rng.standard_normal(p.data.shape)
                    opt.step()
            results[enabled] = (
                [p.data.copy() for p in params],
                [m.copy() for m in opt._m],
                [v.copy() for v in opt._v],
            )
        for ref, pooled in zip(results[False], results[True]):
            for r, p in zip(ref, pooled):
                np.testing.assert_array_equal(r, p)

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_sgd_bitwise(self, momentum, weight_decay):
        results = {}
        for enabled in (False, True):
            rng = np.random.default_rng(13)
            params = _make_params(rng)
            with use_buffer_pool(enabled):
                opt = SGD(params, lr=0.05, momentum=momentum,
                          weight_decay=weight_decay)
                for _ in range(5):
                    for p in params:
                        p.grad = rng.standard_normal(p.data.shape)
                    opt.step()
            results[enabled] = [p.data.copy() for p in params]
        for r, p in zip(results[False], results[True]):
            np.testing.assert_array_equal(r, p)

    def test_adam_skips_gradless_params(self):
        rng = np.random.default_rng(5)
        params = _make_params(rng)
        params[1].grad = None
        before = params[1].data.copy()
        with use_buffer_pool(True):
            Adam(params, lr=0.1).step()
        np.testing.assert_array_equal(params[1].data, before)
        assert not np.array_equal(params[0].data, _make_params(
            np.random.default_rng(5), with_grads=False)[0].data)

    def test_clip_grad_norm_bitwise(self):
        results = {}
        for enabled in (False, True):
            rng = np.random.default_rng(17)
            params = _make_params(rng)
            with use_buffer_pool(enabled):
                total = clip_grad_norm(params, max_norm=0.5)
            results[enabled] = (total, [p.grad.copy() for p in params])
        assert results[False][0] == results[True][0]
        for r, p in zip(results[False][1], results[True][1]):
            np.testing.assert_array_equal(r, p)


def _fit_and_predict(dataset, split, epochs=2):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(7)
    model = O2SiteRec(
        dataset, split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
    )
    trainer = Trainer(
        model,
        TrainConfig(epochs=epochs, lr=1e-3, patience=epochs, min_epochs=epochs),
    )
    result = trainer.fit(pairs, targets)
    return np.asarray(result.train_losses), model.predict(split.test_pairs)


class TestWholeModelPin:
    """O2_BUFFER_POOL=1 training is bit-for-bit equal to =0."""

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "reference"])
    def test_fit_curve_bitwise(self, micro_dataset, micro_split, fast):
        with use_fast_kernels(fast):
            with use_buffer_pool(True):
                curve_pool, pred_pool = _fit_and_predict(
                    micro_dataset, micro_split
                )
            with use_buffer_pool(False):
                curve_ref, pred_ref = _fit_and_predict(
                    micro_dataset, micro_split
                )
        np.testing.assert_array_equal(curve_pool, curve_ref)
        np.testing.assert_array_equal(pred_pool, pred_ref)


class TestTapeRetirement:
    def test_outstanding_returns_to_baseline(self):
        gp = pool.global_pool()
        with use_buffer_pool(True):
            _drain()
            baseline = gp.outstanding()
            loss_val, *_ = _random_graph_loss(0, free_graph=True)
            _drain()
            assert np.isfinite(loss_val)
            assert gp.outstanding() <= baseline + 1  # at most the loss scalar

    def test_free_graph_drops_tape_links(self):
        with use_buffer_pool(True):
            t = Tensor(np.ones((512, 4)), requires_grad=True)
            mid = (t * 3.0).relu()
            loss = mid.sum()
            loss.backward(free_graph=True)
            assert mid._backward is None and mid._parents == ()
            assert loss._backward is None and loss._parents == ()
            assert t.grad is not None
            # A second backward through the retired tape must not reach t.
            before = t.grad.copy()
            loss.backward()
            np.testing.assert_array_equal(t.grad, before)

    def test_plain_backward_keeps_tape(self):
        with use_buffer_pool(True):
            t = Tensor(np.ones((512, 4)), requires_grad=True)
            loss = (t * 3.0).sum()
            loss.backward()
            assert loss._backward is not None
            loss.backward()  # accumulates a second pass
            np.testing.assert_array_equal(t.grad, np.full((512, 4), 6.0))


class TestMemprof:
    def test_report_counts_pooled_requests(self):
        memprof.reset()
        with memprof.use_mem_profile(True), use_buffer_pool(True):
            a = Tensor(np.ones((700, 8)), requires_grad=True)
            ((a * 2.0).relu().sum()).backward()
        snap = memprof.report()
        assert snap["total_alloc_count"] > 0
        assert snap["total_alloc_bytes"] > 0
        assert "mul" in snap["allocs"]
        assert snap["pool"]["hits"] + snap["pool"]["misses"] > 0
        text = memprof.format_report(snap)
        assert "memory plane report" in text and "mul" in text
        memprof.reset()
        assert memprof.report()["total_alloc_count"] == 0

    def test_disabled_by_default(self):
        assert not memprof.enabled() or True  # env may enable it; smoke only
        memprof.reset()
        with memprof.use_mem_profile(False), use_buffer_pool(True):
            b = pool.empty((600, 8))
            del b
        assert memprof.report()["total_alloc_count"] == 0


class TestSwitchPlumbing:
    def test_env_default_is_on(self):
        assert buffer_pool_enabled() in (True, False)  # importable + callable

    def test_context_manager_restores(self):
        previous = buffer_pool_enabled()
        with use_buffer_pool(not previous):
            assert buffer_pool_enabled() is (not previous)
        assert buffer_pool_enabled() is previous
