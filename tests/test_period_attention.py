"""Time-attention interpretability API."""

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig
from repro.data.periods import NUM_PERIODS
from repro.nn import init


@pytest.fixture(scope="module")
def model(micro_dataset, micro_split):
    init.seed(0)
    return O2SiteRec(
        micro_dataset, micro_split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
    )


class TestPeriodAttention:
    def test_shape_and_normalisation(self, model, micro_split):
        pairs = micro_split.test_pairs[:6]
        attention = model.period_attention(pairs)
        assert attention.shape == (6, NUM_PERIODS)
        assert np.allclose(attention.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(attention >= 0)

    def test_requires_time_attention(self, micro_dataset, micro_split):
        init.seed(0)
        no_sa = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(
                capacity_dim=6, embedding_dim=20, time_attention=False
            ),
        )
        with pytest.raises(ValueError):
            no_sa.period_attention(micro_split.test_pairs[:2])

    def test_last_weights_recorded(self, model, micro_split):
        model.predict(micro_split.test_pairs[:3])
        weights = model.recommender.time_attention.last_weights
        assert weights is not None
        assert weights.shape[0] == NUM_PERIODS
