"""Commercial features: competitiveness and complementarity (III-C)."""

import numpy as np
import pytest

from repro.data import (
    commercial_features,
    competitiveness,
    complementarity,
    cooccurrence_matrix,
)
from repro.geo import RegionGrid


@pytest.fixture()
def grid():
    return RegionGrid(3, 3, cell_size=500.0)


class TestCompetitiveness:
    def test_ratio_definition(self, grid):
        counts = np.zeros((9, 2))
        counts[4] = [3, 1]  # centre region: 3 of type 0, 1 of type 1
        out = competitiveness(counts, grid, radius_m=100.0)  # no neighbours
        assert out[4, 0] == pytest.approx(3 / 4)
        assert out[4, 1] == pytest.approx(1 / 4)

    def test_neighbours_dilute(self, grid):
        counts = np.zeros((9, 2))
        counts[4] = [2, 0]
        counts[1] = [0, 2]  # neighbour adds to the denominator
        out = competitiveness(counts, grid, radius_m=600.0)
        assert out[4, 0] == pytest.approx(2 / 4)

    def test_empty_region_zero(self, grid):
        out = competitiveness(np.zeros((9, 3)), grid)
        assert np.allclose(out, 0.0)

    def test_range(self, grid, rng):
        counts = rng.poisson(2, size=(9, 4)).astype(float)
        out = competitiveness(counts, grid)
        assert np.all(out >= 0) and np.all(out <= 1)


class TestCooccurrence:
    def test_symmetric(self, rng):
        counts = rng.poisson(1, size=(20, 5)).astype(float)
        cooc = cooccurrence_matrix(counts)
        assert np.allclose(cooc, cooc.T)

    def test_counts_regions(self):
        counts = np.array([[1, 1], [1, 0], [0, 1]], dtype=float)
        cooc = cooccurrence_matrix(counts)
        assert cooc[0, 1] == 1  # only the first region has both
        assert cooc[0, 0] == 2  # type 0 present in two regions


class TestComplementarity:
    def test_shape(self, rng):
        counts = rng.poisson(2, size=(9, 4)).astype(float)
        assert complementarity(counts).shape == (9, 4)

    def test_single_type_is_zero(self):
        counts = np.ones((5, 1))
        assert np.allclose(complementarity(counts), 0.0)

    def test_never_cooccurring_pair_skipped(self):
        # Types 0 and 1 never share a region: no contribution either way.
        counts = np.array([[2, 0], [0, 3]], dtype=float)
        out = complementarity(counts)
        assert np.allclose(out, 0.0)

    def test_complementary_pair_signal(self):
        # Type 1 co-occurs with type 0; regions rich in type 1 (vs average)
        # get a different score for type 0 than poor regions.
        counts = np.array([[1, 4], [1, 0], [1, 2]], dtype=float)
        out = complementarity(counts)
        assert out[0, 0] != out[1, 0]


class TestCommercialFeatures:
    def test_stacked_and_scaled(self, grid, rng):
        counts = rng.poisson(2, size=(9, 4)).astype(float)
        out = commercial_features(counts, grid)
        assert out.shape == (9, 4, 2)
        assert np.abs(out).max() <= 1.0 + 1e-12

    def test_all_zero_city(self, grid):
        out = commercial_features(np.zeros((9, 3)), grid)
        assert np.allclose(out, 0.0)
