"""Tile-parallel order generation: determinism and cache-key stability.

``order_streams="tiles"`` must be a pure function of the city config: the
same table -- byte for byte -- for any ``O2_NUM_PROCS``, and pipeline-cache
keys that never move with the execution environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.city import CityConfig
from repro.city.fastsim import use_order_table
from repro.city.simulator import megacity_config, simulate_uncached
from repro.city.tilesim import TILE_TARGET_REGIONS, tile_layout
from repro.data.cache import cache_key
from repro.data.ordertable import OrderRecordSeq
from repro.parallel import use_num_procs


def _tiled_config(**overrides) -> CityConfig:
    base = dict(
        rows=36, cols=36, num_days=2, num_couriers=300, seed=5,
        base_population=1500.0, order_streams="tiles",
    )
    base.update(overrides)
    return CityConfig(**base)


def _sha(config: CityConfig) -> str:
    return simulate_uncached(config).orders.table.sha256()


class TestLayout:
    def test_layout_is_pure_function_of_shape(self):
        a = tile_layout(36, 36)
        b = tile_layout(36, 36)
        assert (a.tile_rows, a.tile_cols) == (b.tile_rows, b.tile_cols)
        assert np.array_equal(a.owner, b.owner)

    def test_layout_scales_with_grid(self):
        assert tile_layout(7, 7).num_tiles == 1
        big = tile_layout(100, 100)
        assert big.num_tiles >= 10_000 // TILE_TARGET_REGIONS

    def test_multi_tile_config_used_below(self):
        assert tile_layout(36, 36).num_tiles > 1


class TestDeterminism:
    def test_identical_across_worker_counts(self):
        shas = []
        for procs in (0, 2, 4):
            with use_num_procs(procs):
                shas.append(_sha(_tiled_config()))
        assert len(set(shas)) == 1

    def test_repeatable_within_process(self):
        assert _sha(_tiled_config()) == _sha(_tiled_config())

    def test_seed_changes_output(self):
        assert _sha(_tiled_config()) != _sha(_tiled_config(seed=6))

    def test_cache_key_stable_across_procs(self):
        """Env knobs (O2_NUM_PROCS) never leak into cache keys or artifacts."""
        config = _tiled_config()
        keys, shas = [], []
        for procs in (0, 3):
            with use_num_procs(procs):
                keys.append(cache_key("simulation", config))
                shas.append(_sha(_tiled_config()))
        assert keys[0] == keys[1]
        assert shas[0] == shas[1]


class TestRecords:
    def test_orders_are_well_formed(self):
        sim = simulate_uncached(_tiled_config())
        assert isinstance(sim.orders, OrderRecordSeq)
        assert len(sim.orders) > 0
        order = sim.orders[0]
        assert order.order_id == "O0000000"
        assert order.store_id.startswith("S")
        assert order.courier_id.startswith("C")
        assert order.delivered_minute > order.pickup_minute > order.created_minute
        regions = sim.orders.table.column("customer_region")
        assert regions.min() >= 0
        assert regions.max() < sim.land.num_regions

    def test_order_table_flag_off_materialises_list(self):
        config = _tiled_config(num_days=1)
        with use_order_table(True):
            view = simulate_uncached(config).orders
        with use_order_table(False):
            listed = simulate_uncached(config).orders
        assert isinstance(listed, list)
        assert view == listed

    def test_observation_noise_supported(self):
        sim = simulate_uncached(_tiled_config(observation_noise=0.3, num_days=1))
        assert len(sim.orders) > 0

    def test_day_factors_shared_city_wide(self):
        """Tiles see the same day-to-day demand factor (stream 0)."""
        sim = simulate_uncached(_tiled_config(num_days=2, demand_noise=0.9))
        table = sim.orders.table
        days = (table.column("created_minute") // 1440).astype(np.int64)
        part = tile_layout(36, 36)
        owner = part.owner[table.column("customer_region").astype(np.int64)]
        per_tile = []
        for tile in range(part.num_tiles):
            mask = owner == tile
            counts = np.bincount(days[mask], minlength=2).astype(float)
            per_tile.append(counts[1] / max(counts[0], 1.0))
        # With a 0.9-sigma shared day factor the day-1/day-0 volume ratio
        # must move together across tiles (all same side within 3x band).
        ratios = np.array(per_tile)
        assert ratios.max() / ratios.min() < 3.0


class TestMegacityPreset:
    def test_megacity_config_shape(self):
        config = megacity_config(seed=7, scale=1.0)
        assert config.order_streams == "tiles"
        assert config.rows * config.cols >= 99_000

    def test_megacity_small_scale_simulates(self):
        sim = simulate_uncached(megacity_config(seed=7, scale=0.1))
        assert len(sim.orders) > 0
        assert sim.orders.table is not None
