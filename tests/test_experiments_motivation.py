"""Motivation analyses: Figs. 1-5 and Table II reproduce the paper's shape."""

import numpy as np
import pytest

from repro.data import TimePeriod
from repro.experiments import (
    delivery_scope_by_period,
    delivery_time_distribution,
    delivery_time_vs_ratio,
    preference_order_correlation,
    supply_demand_by_bin,
    top_store_types_by_period,
)


class TestFig1SupplyDemand:
    def test_series_shapes(self, medium_sim):
        data = supply_demand_by_bin(medium_sim)
        assert len(data["hours"]) == 12
        assert data["orders"].max() == pytest.approx(1.0)
        assert data["couriers"].max() == pytest.approx(1.0)

    def test_rush_hours_have_most_orders(self, medium_sim):
        data = supply_demand_by_bin(medium_sim)
        hours = data["hours"]
        noon = data["orders"][(hours >= 10) & (hours < 14)].mean()
        afternoon = data["orders"][(hours >= 14) & (hours < 16)].mean()
        assert noon > afternoon

    def test_ratio_lower_at_rush(self, medium_sim):
        data = supply_demand_by_bin(medium_sim)
        hours = data["hours"]
        active = data["orders"] > 0
        noon = data["ratio"][(hours >= 10) & (hours < 14) & active].mean()
        afternoon = data["ratio"][(hours >= 14) & (hours < 16) & active].mean()
        assert noon < afternoon


class TestFig2DeliveryTime:
    def test_negative_correlation(self, medium_sim):
        data = delivery_time_vs_ratio(medium_sim)
        # Lower ratio (less capacity) -> longer delivery time.
        assert float(data["correlation"]) < -0.3

    def test_delivery_longer_at_rush(self, medium_sim):
        data = delivery_time_vs_ratio(medium_sim)
        hours = data["hours"]
        noon = data["delivery_minutes"][(hours >= 10) & (hours < 14)].mean()
        afternoon = data["delivery_minutes"][(hours >= 14) & (hours < 16)].mean()
        assert noon > afternoon


class TestFig3DeliveryScope:
    def test_scope_per_period(self, medium_sim):
        data = delivery_scope_by_period(medium_sim)
        assert len(data["scope_m"]) == 5
        assert np.all(data["scope_m"] > 0)

    def test_rush_scope_smaller_than_afternoon(self, medium_sim):
        data = delivery_scope_by_period(medium_sim)
        scope = dict(zip(data["periods"], data["scope_m"]))
        assert scope["noon rush"] < scope["afternoon"]


class TestFig4TimeDistribution:
    def test_histogram_shape(self, medium_sim):
        data = delivery_time_distribution(medium_sim)
        assert data["histogram"].shape == (5, 7)

    def test_counts_only_in_band(self, medium_sim):
        data = delivery_time_distribution(medium_sim, distance_band_m=(2500, 3000))
        in_band = sum(1 for o in medium_sim.orders if 2500 <= o.distance_m < 3000)
        assert data["histogram"].sum() == in_band


class TestFig5TopTypes:
    def test_top3_per_period(self, medium_sim):
        top = top_store_types_by_period(medium_sim, k=3)
        assert set(top) == set(TimePeriod)
        for entries in top.values():
            assert len(entries) == 3
            counts = [c for _, c in entries]
            assert counts == sorted(counts, reverse=True)

    def test_preferences_differ_across_periods(self, medium_sim):
        top = top_store_types_by_period(medium_sim, k=3)
        leaders = {top[p][0][0] for p in TimePeriod}
        assert len(leaders) >= 2  # morning leader differs from evening leader

    def test_breakfast_peaks_in_morning(self, medium_sim):
        top = top_store_types_by_period(medium_sim, k=5)
        morning_names = [name for name, _ in top[TimePeriod.MORNING]]
        night_names = [name for name, _ in top[TimePeriod.NIGHT]]
        assert "breakfast" in morning_names or "steamed_buns" in morning_names
        assert "breakfast" not in night_names[:3]


class TestTable2Correlation:
    def test_strong_correlation_at_all_radii(self, medium_sim):
        table = preference_order_correlation(medium_sim, radii_km=(1, 2, 3))
        for radius, corr in table.items():
            assert corr > 0.5, f"radius {radius}: {corr}"

    def test_returns_requested_radii(self, medium_sim):
        table = preference_order_correlation(medium_sim, radii_km=(2, 4))
        assert set(table) == {2.0, 4.0}
