"""Process-pool experiment fan-out (``O2_NUM_PROCS``).

The contract is the same as the thread pool's: a fanned-out run must be
*indistinguishable* from the serial one -- every harness cell seeds its own
RNG state, so the comparison table cannot depend on which worker ran which
cell, or in what order.
"""

from __future__ import annotations

import pytest

from repro import parallel
from repro.experiments.harness import HarnessConfig, compare_models


def test_env_procs_parsing(monkeypatch):
    monkeypatch.setattr(parallel, "_proc_override", None)
    for raw, expected in (("0", 0), ("off", 0), ("serial", 0), ("3", 3)):
        monkeypatch.setenv("O2_NUM_PROCS", raw)
        assert parallel.num_procs() == expected
    monkeypatch.delenv("O2_NUM_PROCS")
    assert parallel.num_procs() == 0  # serial by default
    monkeypatch.setenv("O2_NUM_PROCS", "auto")
    assert parallel.num_procs() >= 1
    monkeypatch.setenv("O2_NUM_PROCS", "bogus")
    with pytest.raises(ValueError):
        parallel.num_procs()


def test_set_num_procs_and_context_manager():
    previous = parallel.set_num_procs(4)
    try:
        assert parallel.num_procs() == 4
        with parallel.use_num_procs(0):
            assert parallel.num_procs() == 0
        assert parallel.num_procs() == 4
        with pytest.raises(ValueError):
            parallel.set_num_procs(-1)
    finally:
        parallel.set_num_procs(previous)


def test_process_map_preserves_item_order():
    items = list(range(20))
    assert parallel.process_map(_square, items, procs=4) == [
        i * i for i in items
    ]
    # Serial fallbacks: zero workers, single item.
    assert parallel.process_map(_square, items, procs=0) == [
        i * i for i in items
    ]
    assert parallel.process_map(_square, [7], procs=4) == [49]


def _square(x: int) -> int:  # top-level: must be picklable
    return x * x


def _explode_on_three(x: int) -> int:  # top-level: must be picklable
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x * x


def test_process_map_surfaces_worker_failures():
    """A worker exception names the failing chunk index and its args."""
    with pytest.raises(parallel.ProcessMapError) as excinfo:
        parallel.process_map(_explode_on_three, list(range(6)), procs=2)
    message = str(excinfo.value)
    assert "task 3" in message
    assert "ValueError" in message
    assert "bad item 3" in message
    assert "(item: 3)" in message


def test_process_map_serial_path_raises_original():
    """The serial fallback keeps the original exception (full traceback)."""
    with pytest.raises(ValueError, match="bad item 3"):
        parallel.process_map(_explode_on_three, list(range(6)), procs=0)


def test_compare_models_fanned_equals_serial():
    config = HarnessConfig(rounds=2, scale=0.35, epochs=3, patience=3)
    kwargs = dict(baselines=("GC-MC",), settings=("adaption",))

    with parallel.use_num_procs(0):
        serial = compare_models("real", config, **kwargs)
    with parallel.use_num_procs(2):
        fanned = compare_models("real", config, **kwargs)

    assert list(serial.rows) == list(fanned.rows)  # same rows, same order
    for key in serial.rows:
        for metric in serial.metrics:
            assert (
                serial.rows[key].series(metric).tolist()
                == fanned.rows[key].series(metric).tolist()
            ), (key, metric)
