"""LayerNorm and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import LayerNorm, Parameter
from repro.optim import SGD, CosineLR, StepLR, WarmupLR
from repro.tensor import Tensor, check_gradients


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(5, 8)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_apply(self):
        ln = LayerNorm(4)
        ln.gain.data[:] = 2.0
        ln.bias.data[:] = 1.0
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 5))))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_gradients(self):
        ln = LayerNorm(5)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda x: ln(x).sum(), [x], atol=1e-4)

    def test_parameter_gradients_flow(self):
        ln = LayerNorm(5)
        x = Tensor(np.random.default_rng(3).normal(size=(3, 5)))
        ln(x).sum().backward()
        assert ln.gain.grad is not None
        assert ln.bias.grad is not None


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_decays_at_steps(self):
        opt = make_optimizer(1.0)
        schedule = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=1, gamma=0.0)


class TestCosineLR:
    def test_monotone_decay_to_min(self):
        opt = make_optimizer(1.0)
        schedule = CosineLR(opt, total_epochs=10, min_lr=0.1)
        lrs = [schedule.step() for _ in range(12)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(make_optimizer(), total_epochs=0)
        with pytest.raises(ValueError):
            CosineLR(make_optimizer(), total_epochs=5, min_lr=-1)


class TestWarmupLR:
    def test_ramps_then_constant(self):
        opt = make_optimizer(1.0)
        schedule = WarmupLR(opt, warmup_epochs=4)
        assert opt.lr < 1.0  # immediately below base
        lrs = [schedule.step() for _ in range(6)]
        assert lrs[-1] == 1.0
        assert all(a <= b + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLR(make_optimizer(), warmup_epochs=0)
