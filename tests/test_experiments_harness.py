"""Experiment harness, ablation plumbing, registry and table formatting."""

import numpy as np
import pytest

from repro.core import O2SiteRecConfig
from repro.experiments import (
    BASELINE_ORDER,
    EXPERIMENTS,
    ComparisonTable,
    HarnessConfig,
    build_dataset,
    compare_models,
    format_bar_groups,
    format_comparison_table,
    format_series,
    quick_harness,
    variant_config,
)
from repro.metrics import EvaluationResult, MultiRoundResult


class TestRegistry:
    def test_all_fourteen_experiments(self):
        assert len(EXPERIMENTS) == 14
        for exp_id in ("fig1", "table2", "table3", "table4", "fig10", "fig16"):
            assert exp_id in EXPERIMENTS

    def test_bench_paths_exist(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        for exp in EXPERIMENTS.values():
            assert (root / exp.bench).exists(), exp.bench


class TestHarnessConfig:
    def test_defaults(self):
        config = HarnessConfig()
        assert config.rounds >= 1
        assert isinstance(config.model_config, O2SiteRecConfig)

    def test_quick_harness_is_smaller(self):
        quick = quick_harness()
        full = HarnessConfig()
        assert quick.epochs < full.epochs
        assert quick.scale < full.scale

    def test_baseline_order_matches_paper(self):
        assert BASELINE_ORDER == (
            "CityTransfer",
            "BL-G-CoSVD",
            "GC-MC",
            "GraphRec",
            "RGCN",
            "HGT",
        )


class TestBuildDataset:
    def test_real_and_sim_kinds(self):
        ds_real, split_real = build_dataset("real", seed=0, scale=0.45)
        ds_sim, split_sim = build_dataset("sim", seed=0, scale=0.6)
        assert len(split_real.train_pairs) > 0
        assert len(split_sim.train_pairs) > 0
        # The sim preset is sparser per region-day.
        real_density = ds_real.aggregates.counts_sa.sum() / ds_real.num_regions
        sim_density = ds_sim.aggregates.counts_sa.sum() / ds_sim.num_regions
        assert sim_density < real_density

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_dataset("synthetic", seed=0, scale=1.0)

    def test_seed_changes_city(self):
        a, _ = build_dataset("real", seed=0, scale=0.45)
        b, _ = build_dataset("real", seed=1, scale=0.45)
        assert a.aggregates.counts_sa.sum() != b.aggregates.counts_sa.sum()


class TestVariantConfig:
    def test_all_variants(self):
        base = O2SiteRecConfig()
        assert variant_config(base, "O2-SiteRec") is base
        assert not variant_config(base, "w/o Co").use_capacity
        wococu = variant_config(base, "w/o CoCu")
        assert not wococu.use_capacity and not wococu.use_preferences
        assert not variant_config(base, "w/o NA").node_attention
        assert not variant_config(base, "w/o SA").time_attention

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_config(O2SiteRecConfig(), "w/o everything")


def _table():
    def rounds(values):
        return MultiRoundResult(
            [
                EvaluationResult(values={"NDCG@3": v, "RMSE": 1 - v})
                for v in values
            ]
        )

    return ComparisonTable(
        rows={
            "HGT/adaption": rounds([0.6, 0.62]),
            "O2-SiteRec": rounds([0.7, 0.72]),
        },
        metrics=("NDCG@3", "RMSE"),
        reference_row="HGT/adaption",
    )


class TestComparisonTable:
    def test_p_value_and_improvement(self):
        table = _table()
        assert table.p_value("NDCG@3") < 0.05
        assert table.improvement_over("HGT/adaption", "NDCG@3") == pytest.approx(
            (0.71 - 0.61) / 0.61
        )

    def test_format_contains_rows_and_markers(self):
        text = format_comparison_table(_table(), title="T")
        assert "O2-SiteRec" in text
        assert "HGT/adaption" in text
        assert "paired t-test" in text


class TestFormatters:
    def test_format_series_alignment(self):
        text = format_series(
            "Title", "x", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "0.1000" in text and "0.4000" in text

    def test_format_bar_groups(self):
        text = format_bar_groups("T", ["g1"], {"m": [1.0]}, fmt="{:.1f}")
        assert "g1" in text and "1.0" in text


@pytest.mark.slow
class TestCompareModelsSmoke:
    def test_tiny_comparison_runs(self):
        config = HarnessConfig(rounds=1, scale=0.45, epochs=4, patience=10)
        table = compare_models(
            "real",
            config=config,
            baselines=("CityTransfer",),
            settings=("adaption",),
            metrics=("NDCG@3", "RMSE"),
        )
        assert "O2-SiteRec" in table.rows
        assert "CityTransfer/adaption" in table.rows
        for row in table.rows.values():
            value = row.mean("NDCG@3")
            assert 0.0 <= value <= 1.0
