"""Trainer integration with learning-rate schedules."""

import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.nn import init


@pytest.fixture()
def model(micro_dataset, micro_split):
    init.seed(0)
    return O2SiteRec(
        micro_dataset, micro_split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
    )


class TestTrainerSchedules:
    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(schedule="exponential")

    def test_cosine_lowers_lr(self, model, micro_dataset, micro_split):
        config = TrainConfig(epochs=6, lr=1e-2, schedule="cosine", patience=100)
        trainer = Trainer(model, config)
        trainer.fit(
            micro_split.train_pairs,
            micro_dataset.pair_targets(micro_split.train_pairs),
        )
        assert trainer.optimizer.lr < 1e-2

    def test_step_schedule_constructed(self, model):
        trainer = Trainer(model, TrainConfig(epochs=9, lr=1e-2, schedule="step"))
        assert trainer.schedule is not None
        assert trainer.schedule.step_size == 3

    def test_none_schedule_keeps_lr(self, model, micro_dataset, micro_split):
        config = TrainConfig(epochs=3, lr=1e-2, patience=100)
        trainer = Trainer(model, config)
        trainer.fit(
            micro_split.train_pairs,
            micro_dataset.pair_targets(micro_split.train_pairs),
        )
        assert trainer.optimizer.lr == 1e-2

    def test_training_still_converges_with_schedule(
        self, model, micro_dataset, micro_split
    ):
        config = TrainConfig(epochs=10, lr=1e-2, schedule="cosine", patience=100)
        result = Trainer(model, config).fit(
            micro_split.train_pairs,
            micro_dataset.pair_targets(micro_split.train_pairs),
        )
        assert result.train_losses[-1] < result.train_losses[0]
