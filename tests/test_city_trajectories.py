"""Courier trajectory synthesis."""

import numpy as np
import pytest

from repro.city import iter_trajectories, trajectory_for_order


class TestTrajectoryForOrder:
    @pytest.fixture()
    def order(self, sim):
        return sim.orders[0]

    def test_endpoints_near_store_and_customer(self, sim, order):
        points = trajectory_for_order(order, sim.land.grid, jitter_m=0.0)
        first, last = points[0], points[-1]
        assert first.lon == pytest.approx(order.store_lon, abs=1e-6)
        assert first.lat == pytest.approx(order.store_lat, abs=1e-6)
        assert last.lon == pytest.approx(order.customer_lon, abs=1e-6)
        assert last.lat == pytest.approx(order.customer_lat, abs=1e-6)

    def test_timestamps_span_delivery(self, sim, order):
        points = trajectory_for_order(order, sim.land.grid)
        assert points[0].minute == pytest.approx(order.pickup_minute)
        assert points[-1].minute == pytest.approx(order.delivered_minute)
        minutes = [p.minute for p in points]
        assert minutes == sorted(minutes)

    def test_upload_interval_respected(self, sim, order):
        points = trajectory_for_order(order, sim.land.grid, interval_s=20.0)
        expected = max(int(order.delivery_minutes * 60 / 20.0), 1) + 1
        assert len(points) == expected

    def test_courier_id_propagates(self, sim, order):
        points = trajectory_for_order(order, sim.land.grid)
        assert all(p.courier_id == order.courier_id for p in points)

    def test_invalid_interval(self, sim, order):
        with pytest.raises(ValueError):
            trajectory_for_order(order, sim.land.grid, interval_s=0.0)


class TestIterTrajectories:
    def test_streams_all_orders(self, sim):
        orders = sim.orders[:3]
        points = list(iter_trajectories(orders, sim.land.grid, interval_s=60.0))
        couriers = {p.courier_id for p in points}
        assert couriers == {o.courier_id for o in orders}

    def test_lazy(self, sim):
        gen = iter_trajectories(sim.orders, sim.land.grid)
        assert next(gen) is not None
