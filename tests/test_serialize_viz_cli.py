"""Model checkpoints, terminal visualisation and the city CLI."""

import numpy as np
import pytest

from repro import viz
from repro.city.__main__ import main as city_main
from repro.core import (
    O2SiteRec,
    O2SiteRecConfig,
    load_config,
    load_model,
    save_model,
)
from repro.geo import RegionGrid
from repro.nn import init


class TestSerialization:
    @pytest.fixture()
    def model(self, micro_dataset, micro_split):
        init.seed(4)
        return O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )

    def test_roundtrip_preserves_predictions(
        self, model, micro_dataset, micro_split, tmp_path
    ):
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path, micro_dataset, micro_split)
        pairs = micro_split.test_pairs[:10]
        assert np.allclose(model.predict(pairs), restored.predict(pairs))

    def test_config_embedded(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path)
        config = load_config(path)
        assert config == model.config

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not an O2-SiteRec checkpoint"):
            load_config(path)

    def test_suffixless_path_roundtrip(
        self, model, micro_dataset, micro_split, tmp_path
    ):
        # np.savez silently appends .npz; save/load must agree on the name.
        save_model(model, tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").exists()
        assert load_config(tmp_path / "ckpt") == model.config
        restored = load_model(tmp_path / "ckpt", micro_dataset, micro_split)
        pairs = micro_split.test_pairs[:5]
        assert np.allclose(model.predict(pairs), restored.predict(pairs))

    def test_rejects_wrong_format_version(
        self, model, micro_dataset, micro_split, tmp_path
    ):
        from repro.core import serialize

        path = tmp_path / "model.npz"
        save_model(model, path)
        with np.load(path, allow_pickle=False) as archive:
            contents = {name: archive[name] for name in archive.files}
        contents[serialize._VERSION_KEY] = np.array(99)
        np.savez(path, **contents)
        with pytest.raises(ValueError, match="checkpoint format 99"):
            load_model(path, micro_dataset, micro_split)

    def test_load_config_only_read(self, model, tmp_path):
        # Reading the config must not require the dataset or the split.
        path = tmp_path / "model.npz"
        save_model(model, path)
        config = load_config(path)
        assert config.embedding_dim == 20
        assert config.capacity_dim == 6


class TestViz:
    @pytest.fixture()
    def grid(self):
        return RegionGrid(3, 4)

    def test_heatmap_dimensions(self, grid):
        values = np.arange(grid.num_regions, dtype=float)
        text = viz.ascii_heatmap(grid, values, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + grid.rows + 1  # title + rows + legend
        assert all(len(line) == grid.cols * 2 for line in lines[1:-1])

    def test_heatmap_extremes(self, grid):
        values = np.zeros(grid.num_regions)
        values[0] = 1.0
        text = viz.ascii_heatmap(grid, values, legend=False)
        assert "@" in text and " " in text

    def test_heatmap_constant_values(self, grid):
        text = viz.ascii_heatmap(grid, np.ones(grid.num_regions), legend=False)
        assert text  # no division by zero

    def test_heatmap_shape_check(self, grid):
        with pytest.raises(ValueError):
            viz.ascii_heatmap(grid, np.zeros(5))

    def test_categorical_map(self, grid):
        labels = np.arange(grid.num_regions) % 3
        text = viz.categorical_map(grid, labels)
        assert len(set(text.replace("\n", ""))) == 3

    def test_loss_curve(self):
        losses = np.linspace(1.0, 0.1, 50)
        text = viz.loss_curve(losses, width=20, height=5, title="loss")
        assert "loss" in text
        assert "*" in text
        assert "(50 epochs)" in text

    def test_loss_curve_validation(self):
        with pytest.raises(ValueError):
            viz.loss_curve([])
        with pytest.raises(ValueError):
            viz.loss_curve([1.0], width=1)


class TestCityCli:
    def test_custom_city_to_csv(self, tmp_path, capsys):
        rc = city_main(
            [
                "--rows", "5", "--cols", "5", "--days", "2",
                "--couriers", "30", "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "orders.csv").exists()
        assert (tmp_path / "stores.csv").exists()

        from repro.data import load_orders, load_stores

        orders = load_orders(tmp_path / "orders.csv")
        stores = load_stores(tmp_path / "stores.csv")
        assert len(orders) > 0 and len(stores) > 0

    def test_preset_real(self, tmp_path, capsys):
        rc = city_main(
            ["--preset", "real", "--scale", "0.4", "--out-dir", str(tmp_path)]
        )
        assert rc == 0
        assert (tmp_path / "orders.csv").exists()
