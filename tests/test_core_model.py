"""O2SiteRec facade: config, forward, loss, ablation switches."""

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, paper_hyperparams
from repro.nn import init


@pytest.fixture(scope="module")
def small_config():
    return O2SiteRecConfig(capacity_dim=6, embedding_dim=20, node_heads=5)


@pytest.fixture(scope="module")
def model(micro_dataset, micro_split, small_config):
    init.seed(1)
    return O2SiteRec(micro_dataset, micro_split, small_config)


class TestConfig:
    def test_defaults_valid(self):
        cfg = O2SiteRecConfig()
        assert cfg.embedding_dim % cfg.node_heads == 0

    def test_paper_hyperparams(self):
        cfg = paper_hyperparams()
        assert cfg.capacity_dim == 20
        assert cfg.embedding_dim == 90
        assert cfg.node_heads == 5
        assert cfg.time_heads == 2
        assert cfg.beta == 0.2
        assert cfg.num_layers == 2

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            O2SiteRecConfig(embedding_dim=41, node_heads=5)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            O2SiteRecConfig(beta=-0.1)

    def test_ablation_constructors(self):
        cfg = O2SiteRecConfig()
        assert not cfg.without_capacity().use_capacity
        wococu = cfg.without_capacity_and_preferences()
        assert not wococu.use_capacity and not wococu.use_preferences
        assert not cfg.without_node_attention().node_attention
        assert not cfg.without_time_attention().time_attention


class TestForward:
    def test_prediction_shape(self, model, micro_split):
        pairs = micro_split.train_pairs[:10]
        out = model.forward(pairs)
        assert out.shape == (10,)

    def test_predict_is_deterministic_in_eval(self, model, micro_split):
        pairs = micro_split.test_pairs[:8]
        a = model.predict(pairs)
        b = model.predict(pairs)
        assert np.allclose(a, b)

    def test_predict_restores_training_mode(self, model, micro_split):
        model.train()
        model.predict(micro_split.test_pairs[:2])
        assert model.training

    def test_unknown_region_raises(self, model, micro_dataset):
        bad = np.array([[10**6, 0]])
        with pytest.raises(KeyError):
            model.forward(bad)

    def test_loss_components(self, model, micro_dataset, micro_split):
        pairs = micro_split.train_pairs[:20]
        targets = micro_dataset.pair_targets(pairs)
        loss, o2, o1 = model.loss(pairs, targets)
        assert float(loss.data) == pytest.approx(o2 + model.config.beta * o1)
        assert o1 > 0  # capacity reconstruction active

    def test_gradients_flow_everywhere(self, model, micro_dataset, micro_split):
        model.zero_grad()
        pairs = micro_split.train_pairs[:20]
        loss, _, _ = model.loss(pairs, micro_dataset.pair_targets(pairs))
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        assert with_grad / len(model.parameters()) > 0.9


class TestAblationModels:
    def test_without_capacity_has_no_capacity_model(
        self, micro_dataset, micro_split, small_config
    ):
        model = O2SiteRec(
            micro_dataset, micro_split, small_config.without_capacity()
        )
        assert model.capacity_model is None
        pairs = micro_split.train_pairs[:5]
        loss, o2, o1 = model.loss(pairs, micro_dataset.pair_targets(pairs))
        assert o1 == 0.0

    def test_without_preferences_still_predicts(
        self, micro_dataset, micro_split, small_config
    ):
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            small_config.without_capacity_and_preferences(),
        )
        out = model.predict(micro_split.test_pairs[:5])
        assert out.shape == (5,)

    def test_without_node_attention(self, micro_dataset, micro_split, small_config):
        model = O2SiteRec(
            micro_dataset, micro_split, small_config.without_node_attention()
        )
        assert model.predict(micro_split.test_pairs[:3]).shape == (3,)

    def test_without_time_attention(self, micro_dataset, micro_split, small_config):
        model = O2SiteRec(
            micro_dataset, micro_split, small_config.without_time_attention()
        )
        assert model.predict(micro_split.test_pairs[:3]).shape == (3,)

    def test_variants_differ_from_full(
        self, model, micro_dataset, micro_split, small_config
    ):
        init.seed(1)
        variant = O2SiteRec(
            micro_dataset, micro_split, small_config.without_time_attention()
        )
        pairs = micro_split.test_pairs[:5]
        assert not np.allclose(model.predict(pairs), variant.predict(pairs))


class TestStateDict:
    def test_roundtrip(self, micro_dataset, micro_split, small_config):
        init.seed(2)
        a = O2SiteRec(micro_dataset, micro_split, small_config)
        init.seed(3)
        b = O2SiteRec(micro_dataset, micro_split, small_config)
        pairs = micro_split.test_pairs[:5]
        assert not np.allclose(a.predict(pairs), b.predict(pairs))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.predict(pairs), b.predict(pairs))
