"""Trainer and top-k recommendation API."""

import numpy as np
import pytest

from repro.core import (
    O2SiteRec,
    O2SiteRecConfig,
    Recommendation,
    TrainConfig,
    Trainer,
    paper_train_config,
    recommend_sites,
)
from repro.nn import init


@pytest.fixture(scope="module")
def trained(micro_dataset, micro_split):
    init.seed(0)
    model = O2SiteRec(
        micro_dataset,
        micro_split,
        O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
    )
    trainer = Trainer(model, TrainConfig(epochs=12, lr=5e-3, patience=50))
    result = trainer.fit(
        micro_split.train_pairs, micro_dataset.pair_targets(micro_split.train_pairs)
    )
    return model, result


class TestTrainer:
    def test_loss_decreases(self, trained):
        _, result = trained
        assert result.train_losses[-1] < result.train_losses[0]

    def test_loss_curves_recorded(self, trained):
        _, result = trained
        assert len(result.train_losses) == len(result.validation_losses)
        assert result.best_validation <= max(result.validation_losses)

    def test_early_stopping(self, micro_dataset, micro_split):
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        config = TrainConfig(epochs=50, lr=0.0 + 1e-9, patience=2, min_epochs=1)
        result = Trainer(model, config).fit(
            micro_split.train_pairs,
            micro_dataset.pair_targets(micro_split.train_pairs),
        )
        assert result.stopped_epoch < 50  # lr ~ 0: no progress, stops early

    def test_minibatch_mode(self, micro_dataset, micro_split):
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        config = TrainConfig(epochs=2, lr=5e-3, batch_size=32)
        result = Trainer(model, config).fit(
            micro_split.train_pairs,
            micro_dataset.pair_targets(micro_split.train_pairs),
        )
        assert len(result.train_losses) == 2

    def test_input_validation(self, micro_dataset, micro_split):
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        trainer = Trainer(model, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(micro_split.train_pairs[:3], np.zeros(2))
        with pytest.raises(ValueError):
            trainer.fit(micro_split.train_pairs[:1], np.zeros(1))

    def test_paper_train_config(self):
        cfg = paper_train_config()
        assert cfg.lr == 1e-4
        assert cfg.batch_size == 128


class TestRecommendSites:
    def test_returns_top_k_sorted(self, trained, micro_dataset, micro_split):
        model, _ = trained
        candidates = micro_split.test_regions_for_type(0)
        recs = recommend_sites(
            model, 0, candidates, k=3, target_scale=micro_dataset.target_scale
        )
        assert len(recs) == min(3, len(candidates))
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_denormalises(self, trained, micro_dataset, micro_split):
        model, _ = trained
        recs = recommend_sites(
            model,
            0,
            micro_split.test_regions_for_type(0),
            k=1,
            target_scale=micro_dataset.target_scale,
        )
        assert recs[0].predicted_orders == pytest.approx(
            recs[0].score * micro_dataset.target_scale
        )

    def test_k_larger_than_candidates(self, trained, micro_split):
        model, _ = trained
        candidates = micro_split.test_regions_for_type(0)[:2]
        recs = recommend_sites(model, 0, candidates, k=10)
        assert len(recs) == 2

    def test_validation(self, trained):
        model, _ = trained
        with pytest.raises(ValueError):
            recommend_sites(model, 0, [], k=3)
        with pytest.raises(ValueError):
            recommend_sites(model, 0, [1, 2], k=0)

    def test_recommendation_fields(self, trained, micro_split):
        model, _ = trained
        rec = recommend_sites(model, 2, micro_split.test_regions_for_type(2), k=1)[0]
        assert isinstance(rec, Recommendation)
        assert rec.store_type == 2
