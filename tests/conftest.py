"""Shared fixtures: one tiny simulated city reused across the suite.

Simulation and dataset construction are deterministic in the seed, so
session scope is safe; tests must not mutate these objects.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

import numpy as np
import pytest

# Route the pipeline artifact cache (repro.data.cache) to a throwaway
# directory for the whole test session: repeated simulations of identical
# configs across test modules replay from disk instead of re-running, and
# nothing leaks into (or reads from) the user's real cache.  Set before any
# repro import so every cache_root() call in the session sees it; tests
# that exercise the cache itself override the variable via monkeypatch.
_TEST_CACHE_DIR = tempfile.mkdtemp(prefix="o2-test-cache-")
os.environ.setdefault("O2_PIPELINE_CACHE", _TEST_CACHE_DIR)
atexit.register(shutil.rmtree, _TEST_CACHE_DIR, ignore_errors=True)

from repro.city import CityConfig, simulate, tiny_dataset
from repro.data import SiteRecDataset


@pytest.fixture(scope="session")
def sim():
    """A small but fully populated simulated city-month."""
    return tiny_dataset(seed=3)


@pytest.fixture(scope="session")
def dataset(sim):
    return SiteRecDataset.from_simulation(sim)


@pytest.fixture(scope="session")
def split(dataset):
    return dataset.split(seed=0)


@pytest.fixture(scope="session")
def medium_sim():
    """A city wide enough for the motivation analyses (Figs. 1-5, Table II).

    The tiny fixture's afternoon order volume is too small for tail
    statistics like the farthest delivery distance.
    """
    return simulate(
        CityConfig(
            rows=14,
            cols=14,
            num_days=7,
            num_couriers=220,
            seed=7,
            sparsity=0.7,
        )
    )


@pytest.fixture(scope="session")
def micro_sim():
    """An even smaller city for the expensive model-training tests."""
    return simulate(
        CityConfig(
            rows=5,
            cols=5,
            num_days=3,
            num_couriers=40,
            seed=5,
            base_population=2000.0,
        )
    )


@pytest.fixture(scope="session")
def micro_dataset(micro_sim):
    return SiteRecDataset.from_simulation(micro_sim)


@pytest.fixture(scope="session")
def micro_split(micro_dataset):
    return micro_dataset.split(seed=1)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
