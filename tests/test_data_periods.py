"""Time periods (the five daily periods of Fig. 3)."""

import pytest

from repro.data import NUM_PERIODS, TimePeriod


class TestTimePeriod:
    def test_five_periods(self):
        assert NUM_PERIODS == 5
        assert len(TimePeriod.all()) == 5

    @pytest.mark.parametrize(
        "hour,expected",
        [
            (6, TimePeriod.MORNING),
            (9, TimePeriod.MORNING),
            (10, TimePeriod.NOON_RUSH),
            (13, TimePeriod.NOON_RUSH),
            (14, TimePeriod.AFTERNOON),
            (15, TimePeriod.AFTERNOON),
            (16, TimePeriod.EVENING_RUSH),
            (19, TimePeriod.EVENING_RUSH),
            (20, TimePeriod.NIGHT),
            (23, TimePeriod.NIGHT),
            (0, TimePeriod.NIGHT),  # overnight folds into NIGHT
            (5, TimePeriod.NIGHT),
        ],
    )
    def test_from_hour(self, hour, expected):
        assert TimePeriod.from_hour(hour) == expected

    def test_from_hour_wraps(self):
        assert TimePeriod.from_hour(25) == TimePeriod.from_hour(1)

    def test_hours_cover_6_to_24(self):
        covered = set()
        for p in TimePeriod:
            start, end = p.hours
            covered.update(range(start, end))
        assert covered == set(range(6, 24))

    def test_durations(self):
        assert TimePeriod.MORNING.duration_hours == 4
        assert TimePeriod.AFTERNOON.duration_hours == 2

    def test_labels_distinct(self):
        labels = {p.label for p in TimePeriod}
        assert len(labels) == 5
        assert "noon rush" in labels

    def test_int_values_ordered(self):
        values = [int(p) for p in TimePeriod.all()]
        assert values == sorted(values) == [0, 1, 2, 3, 4]
