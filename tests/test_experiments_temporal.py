"""Rolling-origin temporal evaluation."""

import numpy as np
import pytest

from repro.data import MINUTES_PER_DAY
from repro.experiments import (
    TemporalConfig,
    build_temporal_datasets,
    run_temporal_evaluation,
)


@pytest.fixture(scope="module")
def temporal():
    return build_temporal_datasets(
        TemporalConfig(scale=0.45, train_days=9, seed=0)
    )


class TestBuildTemporalDatasets:
    def test_past_only_contains_past_orders(self, temporal):
        cut = temporal.train_days * MINUTES_PER_DAY
        agg = temporal.past.aggregates
        # Reconstruct: every aggregated order came from the past window
        # (total volume must equal the past-window count).
        assert agg.counts_sa.sum() > 0
        # Future targets come from a disjoint, non-empty window.
        assert temporal.future_targets.sum() > 0
        assert temporal.future_days > 0

    def test_future_targets_normalised(self, temporal):
        assert temporal.future_targets.max() == pytest.approx(1.0)
        assert temporal.future_targets.min() >= 0.0

    def test_windows_differ(self, temporal):
        past_norm = temporal.past.targets
        future = temporal.future_targets
        assert not np.allclose(past_norm, future)

    def test_invalid_train_days(self):
        with pytest.raises(ValueError):
            build_temporal_datasets(
                TemporalConfig(scale=0.45, train_days=0)
            )
        with pytest.raises(ValueError):
            build_temporal_datasets(
                TemporalConfig(scale=0.45, train_days=99)
            )

    def test_past_and_future_correlate(self, temporal):
        """Demand persists across windows (the protocol is learnable)."""
        past = temporal.past.targets.ravel()
        future = temporal.future_targets.ravel()
        mask = (past + future) > 0
        corr = np.corrcoef(past[mask], future[mask])[0, 1]
        assert corr > 0.5


@pytest.mark.slow
class TestRunTemporalEvaluation:
    def test_models_rank_future_demand(self):
        config = TemporalConfig(scale=0.45, train_days=9, epochs=8, seed=0)
        results = run_temporal_evaluation(config, baselines=("HGT",))
        assert set(results) == {"O2-SiteRec", "HGT"}
        for result in results.values():
            assert 0.0 <= result["NDCG@3"] <= 1.0
