"""Region grid geometry (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import RegionGrid


@pytest.fixture()
def grid():
    return RegionGrid(rows=4, cols=5, cell_size=500.0)


class TestIdentity:
    def test_num_regions(self, grid):
        assert grid.num_regions == 20

    def test_region_id_row_col_roundtrip(self, grid):
        for region in grid:
            row, col = grid.row_col(region)
            assert grid.region_id(row, col) == region

    def test_region_id_bounds(self, grid):
        with pytest.raises(IndexError):
            grid.region_id(4, 0)
        with pytest.raises(IndexError):
            grid.region_id(0, 5)
        with pytest.raises(IndexError):
            grid.row_col(20)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegionGrid(rows=0, cols=5)
        with pytest.raises(ValueError):
            RegionGrid(rows=2, cols=2, cell_size=0)


class TestGeometry:
    def test_centroid_center_of_cell(self, grid):
        assert grid.centroid(0) == (250.0, 250.0)
        assert grid.centroid(grid.region_id(1, 2)) == (1250.0, 750.0)

    def test_centroids_matches_centroid(self, grid):
        all_c = grid.centroids()
        for region in grid:
            assert tuple(all_c[region]) == grid.centroid(region)

    def test_distance_symmetric_and_zero_on_diagonal(self, grid):
        assert grid.distance(0, 0) == 0.0
        assert grid.distance(0, 7) == grid.distance(7, 0)

    def test_adjacent_distance_is_cell_size(self, grid):
        assert grid.distance(0, 1) == pytest.approx(500.0)

    def test_distance_matrix_matches(self, grid):
        m = grid.distance_matrix()
        assert m.shape == (20, 20)
        assert m[0, 1] == pytest.approx(grid.distance(0, 1))
        assert np.allclose(m, m.T)

    def test_region_of_point_and_clamping(self, grid):
        assert grid.region_of_point(250.0, 250.0) == 0
        assert grid.region_of_point(-100.0, -100.0) == 0
        assert grid.region_of_point(1e9, 1e9) == grid.num_regions - 1

    def test_neighbors_within_800m(self, grid):
        # From an interior cell: 4 rook neighbours (500) + 4 diagonals (707).
        interior = grid.region_id(1, 2)
        assert len(grid.neighbors_within(interior, 800.0)) == 8

    def test_neighbors_within_corner(self, grid):
        assert len(grid.neighbors_within(0, 800.0)) == 3

    def test_neighbors_exclude_self(self, grid):
        assert 0 not in grid.neighbors_within(0, 10_000.0)

    def test_pairs_within_symmetry(self, grid):
        pairs = {(i, j) for i, j, _ in grid.pairs_within(800.0)}
        assert all((j, i) in pairs for i, j in pairs)


class TestLonLat:
    def test_roundtrip(self, grid):
        lon, lat = grid.to_lonlat(1234.0, 567.0)
        x, y = grid.from_lonlat(lon, lat)
        assert x == pytest.approx(1234.0)
        assert y == pytest.approx(567.0)

    def test_origin(self, grid):
        assert grid.to_lonlat(0.0, 0.0) == (grid.origin_lon, grid.origin_lat)


class TestCenter:
    def test_center_region(self, grid):
        assert grid.center_region() == grid.region_id(2, 2)

    def test_distance_from_center_zero_at_center(self, grid):
        assert grid.distance_from_center(grid.center_region()) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    cell=st.floats(100.0, 1000.0),
)
def test_property_roundtrip_any_grid(rows, cols, cell):
    grid = RegionGrid(rows=rows, cols=cols, cell_size=cell)
    for region in range(grid.num_regions):
        row, col = grid.row_col(region)
        assert grid.region_id(row, col) == region
        x, y = grid.centroid(region)
        assert grid.region_of_point(x, y) == region


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(2, 6), cols=st.integers(2, 6), radius=st.floats(100, 3000))
def test_property_neighbors_within_radius(rows, cols, radius):
    grid = RegionGrid(rows=rows, cols=cols, cell_size=500.0)
    for region in range(grid.num_regions):
        for n in grid.neighbors_within(region, radius):
            assert grid.distance(region, n) <= radius + 1e-9
