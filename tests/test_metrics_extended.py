"""Extended ranking metrics: recall, MAP, hit rate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import average_precision, hit_rate_at_k, recall_at_k


class TestRecall:
    def test_perfect(self):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        assert recall_at_k(rel, rel, 2, top_n=2) == 1.0

    def test_partial(self):
        scores = np.array([9.0, 8.0, 0.0, 0.0])
        rel = np.array([5.0, 0.0, 4.0, 3.0])
        # top-2 predicted {0,1}; top-3 true {0,2,3} -> recall 1/3.
        assert recall_at_k(scores, rel, 2, top_n=3) == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros(2), np.zeros(2), 0)


class TestAveragePrecision:
    def test_perfect_is_one(self):
        rel = np.array([3.0, 2.0, 1.0, 0.5])
        assert average_precision(rel, rel, top_n=2) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        assert average_precision(-rel, rel, top_n=2) < 0.8

    def test_known_value(self):
        # relevant = {0}; ranked second -> AP = 1/2.
        scores = np.array([1.0, 2.0])
        rel = np.array([1.0, 0.0])
        assert average_precision(scores, rel, top_n=1) == pytest.approx(0.5)


class TestHitRate:
    def test_hit(self):
        scores = np.array([0.1, 0.9, 0.5])
        rel = np.array([0.0, 5.0, 1.0])
        assert hit_rate_at_k(scores, rel, 1) == 1.0

    def test_miss(self):
        scores = np.array([0.9, 0.1, 0.5])
        rel = np.array([0.0, 5.0, 1.0])
        assert hit_rate_at_k(scores, rel, 1) == 0.0
        assert hit_rate_at_k(scores, rel, 3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(np.zeros(2), np.zeros(2), 0)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 15), k=st.integers(1, 5), seed=st.integers(0, 300))
def test_property_recall_and_ap_bounded(n, k, seed):
    rng = np.random.default_rng(seed)
    scores, rel = rng.random(n), rng.random(n)
    top_n = max(1, n // 2)
    assert 0.0 <= recall_at_k(scores, rel, k, top_n=top_n) <= 1.0
    assert 0.0 <= average_precision(scores, rel, top_n=top_n) <= 1.0 + 1e-9
