"""Decision trees, gradient boosting and the Geo-spotting baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor, GradientBoostedTrees


def make_step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(x[:, 0] > 0.2, 3.0, -1.0) + rng.normal(0, 0.05, n)
    return x, y


def make_nonlinear_data(n=300, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.sign(x[:, 0]) * np.sign(x[:, 1])  # XOR-ish: linear models fail
    return x, y


class TestDecisionTree:
    def test_fits_step_function(self):
        x, y = make_step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_depth_limits_growth(self):
        x, y = make_nonlinear_data()
        shallow = DecisionTreeRegressor(max_depth=1).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert shallow.depth <= 1
        assert deep.depth <= 4
        mse_shallow = np.mean((shallow.predict(x) - y) ** 2)
        mse_deep = np.mean((deep.predict(x) - y) ** 2)
        assert mse_deep < mse_shallow

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.full(50, 2.5)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.depth == 0
        assert np.allclose(tree.predict(x), 2.5)

    def test_min_samples_leaf_respected(self):
        x, y = make_step_data(n=12)
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=6).fit(x, y)
        assert tree.depth <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_duplicate_feature_values_handled(self):
        x = np.zeros((30, 1))
        y = np.random.default_rng(0).normal(size=30)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth == 0  # nothing to split on


class TestGradientBoosting:
    def test_fits_xor_where_linear_fails(self):
        x, y = make_nonlinear_data()
        gbdt = GradientBoostedTrees(n_estimators=80, max_depth=3).fit(x, y)
        mse = np.mean((gbdt.predict(x) - y) ** 2)
        # Best linear fit of XOR has MSE ~ var(y) ~ 1.
        assert mse < 0.2

    def test_staged_mse_decreases(self):
        x, y = make_step_data()
        gbdt = GradientBoostedTrees(n_estimators=30).fit(x, y)
        curve = gbdt.staged_mse(x, y)
        assert curve[-1] < curve[0]

    def test_subsampling_reproducible(self):
        x, y = make_step_data()
        a = GradientBoostedTrees(n_estimators=10, subsample=0.6, seed=3).fit(x, y)
        b = GradientBoostedTrees(n_estimators=10, subsample=0.6, seed=3).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=1.5)
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))


class TestGeoSpottingBaseline:
    def test_fit_predict_and_quality(self, micro_dataset, micro_split):
        from repro.baselines import GeoSpotting

        model = GeoSpotting(micro_dataset, micro_split, setting="adaption")
        pairs = micro_split.train_pairs
        targets = micro_dataset.pair_targets(pairs)
        model.fit(pairs, targets)
        train_mse = np.mean((model.predict(pairs) - targets) ** 2)
        assert train_mse < np.var(targets)  # beats predicting the mean

        preds = model.predict(micro_split.test_pairs)
        assert preds.shape == (len(micro_split.test_pairs),)

    def test_requires_fit(self, micro_dataset, micro_split):
        from repro.baselines import GeoSpotting

        with pytest.raises(RuntimeError):
            GeoSpotting(micro_dataset, micro_split).predict(
                micro_split.test_pairs[:2]
            )

    def test_registry_separation(self):
        from repro.baselines import BASELINE_REGISTRY, EXTRA_BASELINES

        assert "Geo-spotting" in EXTRA_BASELINES
        assert "Geo-spotting" not in BASELINE_REGISTRY
        assert len(BASELINE_REGISTRY) == 6  # the paper's Table III rows


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 200), depth=st.integers(1, 4))
def test_property_tree_never_worse_than_mean(seed, depth):
    """A fitted tree's training MSE never exceeds the mean predictor's."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(40, 2))
    y = rng.normal(size=40)
    tree = DecisionTreeRegressor(max_depth=depth, min_samples_leaf=2).fit(x, y)
    mse_tree = np.mean((tree.predict(x) - y) ** 2)
    mse_mean = np.mean((y - y.mean()) ** 2)
    assert mse_tree <= mse_mean + 1e-9
