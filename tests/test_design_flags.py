"""Design-choice flags (product channel, commercial head) and evaluation
zero-relevance skipping."""

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig
from repro.metrics import evaluate_model
from repro.nn import init


class TestDesignFlags:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"product_channel": False},
            {"commercial_in_predictor": False},
            {"product_channel": False, "commercial_in_predictor": False},
        ],
    )
    def test_variants_construct_and_predict(
        self, micro_dataset, micro_split, overrides
    ):
        init.seed(0)
        cfg = O2SiteRecConfig(capacity_dim=6, embedding_dim=20, **overrides)
        model = O2SiteRec(micro_dataset, micro_split, cfg)
        out = model.predict(micro_split.test_pairs[:5])
        assert out.shape == (5,)
        assert np.all(np.isfinite(out))

    def test_flags_change_architecture(self, micro_dataset, micro_split):
        init.seed(0)
        full = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        init.seed(0)
        lean = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(
                capacity_dim=6, embedding_dim=20, product_channel=False
            ),
        )
        assert lean.num_parameters() < full.num_parameters()

    def test_time_heads_validation_respects_product_flag(self):
        # pair_dim = 2*d2 must divide time_heads when the product channel
        # is off.
        O2SiteRecConfig(embedding_dim=20, time_heads=5, product_channel=False)
        with pytest.raises(ValueError):
            O2SiteRecConfig(
                embedding_dim=20, time_heads=7, product_channel=False
            )


class TestZeroRelevanceSkipping:
    class _Zero:
        def predict(self, pairs):
            return np.zeros(len(pairs))

    def test_zero_relevance_types_excluded(self, micro_dataset, micro_split):
        result = evaluate_model(
            self._Zero(), micro_dataset, micro_split, skip_zero_relevance=True
        )
        for a in result.per_type:
            pairs = np.stack(
                [
                    micro_split.test_regions_for_type(a),
                    np.full(
                        len(micro_split.test_regions_for_type(a)), a, dtype=np.int64
                    ),
                ],
                axis=1,
            )
            assert micro_dataset.pair_targets(pairs).sum() > 0

    def test_disabled_keeps_all_types(self, micro_dataset, micro_split):
        kept = evaluate_model(
            self._Zero(), micro_dataset, micro_split, skip_zero_relevance=False
        )
        skipped = evaluate_model(
            self._Zero(), micro_dataset, micro_split, skip_zero_relevance=True
        )
        assert len(kept.per_type) >= len(skipped.per_type)
