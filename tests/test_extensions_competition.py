"""Multi-platform competition extension."""

import numpy as np
import pytest

from repro.city import real_world_dataset
from repro.extensions import DuopolyConfig, run_competition_experiment, split_market


@pytest.fixture(scope="module")
def market():
    sim = real_world_dataset(seed=7, scale=0.45)
    return split_market(sim, DuopolyConfig(scale=0.45, seed=0))


class TestDuopolyConfig:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DuopolyConfig(frac_only_a=0.5, frac_only_b=0.5, frac_both=0.5)

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            DuopolyConfig(platform_a_share=1.5)


class TestSplitMarket:
    def test_every_store_registered(self, market):
        store_ids = {s.record.store_id for s in market.sim.stores}
        assert set(market.registration) == store_ids
        assert set(market.registration.values()) <= {"A", "B", "both"}

    def test_order_conservation(self, market):
        assert len(market.orders_a) + len(market.orders_b) == market.market_orders

    def test_exclusive_stores_routed_correctly(self, market):
        a_ids = {o.store_id for o in market.orders_a}
        for store_id, reg in market.registration.items():
            if reg == "B":
                assert store_id not in a_ids

    def test_coverage_partial(self, market):
        cov = market.coverage("A")
        assert 0.2 < cov < 0.9
        assert market.coverage("A") + market.coverage("B") == pytest.approx(1.0)

    def test_deterministic(self):
        sim = real_world_dataset(seed=7, scale=0.45)
        m1 = split_market(sim, DuopolyConfig(scale=0.45, seed=3))
        m2 = split_market(sim, DuopolyConfig(scale=0.45, seed=3))
        assert len(m1.orders_a) == len(m2.orders_a)
        assert m1.registration == m2.registration


@pytest.mark.slow
class TestCompetitionExperiment:
    def test_pooled_training_not_worse(self):
        config = DuopolyConfig(scale=0.45, epochs=10, seed=0)
        result = run_competition_experiment(config)
        assert set(result.results) == {"platform_a", "pooled"}
        assert 0 < result.coverage_a < 1
        # The paper's claim: more platforms' data -> no worse (usually
        # better) market-level recommendations.
        assert (
            result["pooled"]["NDCG@3"] >= result["platform_a"]["NDCG@3"] - 0.05
        )
