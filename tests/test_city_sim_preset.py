"""The simulation-dataset preset: customer-location resynthesis."""

import numpy as np
import pytest

from repro.city import real_world_dataset, simulation_dataset
from repro.city.simulator import _resynthesize_customer_locations


@pytest.fixture(scope="module")
def noisy():
    return simulation_dataset(seed=11, scale=0.5)


class TestResynthesis:
    def test_distances_preserved(self, noisy):
        # distance_m is kept verbatim; only the location moved.
        grid = noisy.land.grid
        for o in noisy.orders[:300]:
            sx, sy = grid.from_lonlat(o.store_lon, o.store_lat)
            cx, cy = grid.from_lonlat(o.customer_lon, o.customer_lat)
            actual = np.hypot(sx - cx, sy - cy)
            # Clamping at the city border may shorten the leg; never longer.
            assert actual <= o.distance_m + 1.0

    def test_customer_region_matches_location(self, noisy):
        grid = noisy.land.grid
        for o in noisy.orders[:300]:
            cx, cy = grid.from_lonlat(o.customer_lon, o.customer_lat)
            assert grid.region_of_point(cx, cy) == o.customer_region

    def test_store_side_untouched(self):
        clean = real_world_dataset(seed=7, scale=0.5)
        rng = np.random.default_rng(0)
        rewritten = _resynthesize_customer_locations(clean, rng)
        assert len(rewritten) == clean.num_orders
        for a, b in zip(clean.orders[:100], rewritten[:100]):
            assert a.store_id == b.store_id
            assert a.store_region == b.store_region
            assert a.created_minute == b.created_minute
            assert a.delivered_minute == b.delivered_minute
            assert a.distance_m == b.distance_m

    def test_customer_regions_scrambled(self):
        clean = real_world_dataset(seed=7, scale=0.5)
        rng = np.random.default_rng(0)
        rewritten = _resynthesize_customer_locations(clean, rng)
        moved = sum(
            a.customer_region != b.customer_region
            for a, b in zip(clean.orders, rewritten)
        )
        assert moved / len(rewritten) > 0.3

    def test_preset_is_sparser_than_real(self, noisy):
        clean = real_world_dataset(seed=7, scale=0.5)
        clean_density = clean.num_orders / (
            clean.land.num_regions * clean.config.num_days
        )
        noisy_density = noisy.num_orders / (
            noisy.land.num_regions * noisy.config.num_days
        )
        assert noisy_density < clean_density
