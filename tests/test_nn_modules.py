"""Module tree, Linear/Embedding/Dropout/MLP behaviour."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Embedding,
    Identity,
    LeakyReLU,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
    init,
)
from repro.tensor import Tensor


class TestParameterDiscovery:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(2, 3)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.free = Parameter(np.zeros(2), name="free")
                self.layers = ModuleList([Linear(1, 1), Linear(1, 1)])
                self.bank = {"a": Linear(2, 2)}

        names = dict(Outer().named_parameters())
        assert "inner.lin.weight" in names
        assert "free" in names
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names
        assert "bank.a.weight" in names

    def test_num_parameters(self):
        lin = Linear(4, 3)
        assert lin.num_parameters() == 4 * 3 + 3

    def test_zero_grad_clears_all(self):
        lin = Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a, b = Linear(3, 2), Linear(3, 2)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_rejects_mismatch(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_rejects_shape_mismatch(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self):
        mlp = MLP(2, [3], 1, dropout=0.5)
        mlp.eval()
        assert not mlp.dropout.training
        mlp.train()
        assert mlp.dropout.training


class TestLinear:
    def test_output_shape_and_bias(self):
        lin = Linear(4, 2)
        out = lin(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 2)
        assert np.allclose(out.data, 0.0)  # zero input -> bias (zero init)

    def test_no_bias(self):
        lin = Linear(4, 2, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 8

    def test_gradients_flow(self):
        lin = Linear(3, 2)
        loss = (lin(Tensor(np.ones((4, 3)))) ** 2).sum()
        loss.backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(5, 3)
        out = emb(np.array([1, 1, 4]))
        assert out.shape == (3, 3)
        assert np.allclose(out.data[0], out.data[1])

    def test_full_table(self):
        emb = Embedding(5, 3)
        assert emb().shape == (5, 3)

    def test_out_of_range(self):
        emb = Embedding(5, 3)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter(self):
        emb = Embedding(4, 2)
        emb(np.array([1, 1])).sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[1], 2.0)
        assert np.allclose(grad[0], 0.0)


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(d(x).data, x.data)

    def test_training_scales_survivors(self):
        init.seed(0)
        d = Dropout(0.5)
        out = d(Tensor(np.ones((100, 100)))).data
        survivors = out[out > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7

    def test_p_zero_is_identity(self):
        d = Dropout(0.0)
        x = Tensor(np.ones(5))
        assert d(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestMLP:
    def test_shapes(self):
        mlp = MLP(4, [8, 8], 2)
        assert mlp(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_no_hidden(self):
        mlp = MLP(4, [], 2)
        assert len(mlp.layers) == 1

    def test_out_activation(self):
        mlp = MLP(2, [], 1, out_activation="sigmoid")
        out = mlp(Tensor(np.zeros((1, 2)))).data
        assert np.allclose(out, 0.5)


class TestActivations:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("relu", ReLU),
            ("leaky_relu", LeakyReLU),
            ("sigmoid", Sigmoid),
            ("tanh", Tanh),
            ("identity", Identity),
            ("none", Identity),
        ],
    )
    def test_registry(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_activation("gelu")

    def test_values(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert np.allclose(ReLU()(x).data, [0.0, 1.0])
        assert np.allclose(Tanh()(x).data, np.tanh(x.data))
        assert np.allclose(Identity()(x).data, x.data)


class TestInit:
    def test_seed_reproducible(self):
        init.seed(7)
        a = Linear(4, 4).weight.data.copy()
        init.seed(7)
        b = Linear(4, 4).weight.data.copy()
        assert np.allclose(a, b)

    def test_xavier_range(self):
        w = init.xavier_uniform(100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit
