"""Extra motivation analyses: distance distribution, courier utilisation."""

import numpy as np
import pytest

from repro.data import TimePeriod
from repro.experiments import (
    courier_utilisation_by_period,
    order_distance_distribution,
)


class TestOrderDistanceDistribution:
    def test_counts_cover_all_orders(self, sim):
        data = order_distance_distribution(sim)
        assert data["counts"].sum() == sim.num_orders
        assert data["share"].sum() == pytest.approx(1.0)

    def test_mid_band_dominates(self, sim):
        # Most orders in 0.5-3 km (distance decay + in-person pickup below).
        data = order_distance_distribution(
            sim, edges_m=(0, 500, 3000, np.inf)
        )
        assert data["share"][1] > 0.5

    def test_custom_edges(self, sim):
        data = order_distance_distribution(sim, edges_m=(0, 1000, np.inf))
        assert len(data["counts"]) == 2


class TestCourierUtilisation:
    def test_per_period_shape(self, sim):
        data = courier_utilisation_by_period(sim)
        assert len(data["orders_per_courier_hour"]) == len(TimePeriod)
        assert np.all(data["orders_per_courier_hour"] >= 0)

    def test_rush_load_exceeds_afternoon(self, sim):
        data = courier_utilisation_by_period(sim)
        by_label = dict(zip(data["periods"], data["orders_per_courier_hour"]))
        assert by_label["noon rush"] > by_label["afternoon"]
