"""Cross-city transfer extension."""

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig
from repro.extensions import (
    REGIMES,
    TransferConfig,
    load_transferable,
    transferable_parameters,
)
from repro.nn import init


@pytest.fixture()
def two_models(micro_dataset, micro_split):
    cfg = O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
    init.seed(0)
    a = O2SiteRec(micro_dataset, micro_split, cfg)
    init.seed(1)
    b = O2SiteRec(micro_dataset, micro_split, cfg)
    return a, b


class TestTransferableParameters:
    def test_excludes_embeddings(self, two_models):
        a, _ = two_models
        shared = transferable_parameters(a)
        assert shared
        assert all("embedding" not in name for name in shared)

    def test_includes_attention_and_predictor(self, two_models):
        a, _ = two_models
        names = set(transferable_parameters(a))
        assert any("predictor" in n for n in names)
        assert any("time_attention" in n for n in names)
        assert any("su" in n for n in names)

    def test_load_copies_values(self, two_models):
        a, b = two_models
        shared = transferable_parameters(a)
        copied = load_transferable(b, shared)
        assert copied == len(shared)
        b_params = dict(b.named_parameters())
        for name, value in shared.items():
            assert np.allclose(b_params[name].data, value)

    def test_load_skips_shape_mismatch(self, two_models):
        a, b = two_models
        shared = transferable_parameters(a)
        key = next(iter(shared))
        shared[key] = np.zeros((1, 1))
        copied = load_transferable(b, shared)
        assert copied == len(shared) - 1

    def test_embeddings_untouched(self, two_models):
        a, b = two_models
        before = b.recommender.store_embedding.weight.data.copy()
        load_transferable(b, transferable_parameters(a))
        assert np.allclose(b.recommender.store_embedding.weight.data, before)


class TestTransferConfig:
    def test_defaults(self):
        cfg = TransferConfig()
        assert 0 < cfg.target_train_frac < 0.8
        assert set(REGIMES) == {"scratch", "zero_shot", "transfer"}


@pytest.mark.slow
class TestTransferExperiment:
    def test_runs_and_reports_all_regimes(self):
        from repro.extensions import run_transfer_experiment

        config = TransferConfig(
            source_scale=0.45,
            target_scale=0.45,
            source_epochs=6,
            target_epochs=6,
            fine_tune_epochs=4,
        )
        result = run_transfer_experiment(config)
        assert set(result.results) == set(REGIMES)
        assert result.parameters_transferred > 10
        for regime in REGIMES:
            assert 0.0 <= result[regime]["NDCG@3"] <= 1.0
