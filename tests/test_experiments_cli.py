"""The `python -m repro.experiments` command-line runner."""

import pytest

from repro.experiments.__main__ import RUNNERS, build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 0.55
        assert args.rounds == 1

    def test_experiment_ids(self):
        args = build_parser().parse_args(["fig1", "table2"])
        assert args.experiments == ["fig1", "table2"]


class TestRunners:
    def test_every_registered_experiment_has_a_runner(self):
        assert set(RUNNERS) == set(EXPERIMENTS)

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig16" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_id_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_motivation_experiment(self, capsys):
        assert main(["fig5", "--scale", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "Top store types" in out
        assert "noon rush" in out
