"""SiteRecDataset and the 80/20 interaction split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionSplit, SiteRecDataset, split_interactions


class TestDataset:
    def test_targets_normalised(self, dataset):
        assert dataset.targets.max() == pytest.approx(1.0)
        assert dataset.targets.min() >= 0.0

    def test_target_scale_denormalises(self, dataset, sim):
        raw = dataset.targets * dataset.target_scale
        assert raw.sum() == pytest.approx(sim.num_orders)

    def test_pair_targets_lookup(self, dataset):
        pairs = np.array([[int(dataset.store_regions[0]), 0]])
        value = dataset.pair_targets(pairs)[0]
        assert value == dataset.targets[dataset.store_regions[0], 0]

    def test_shapes(self, dataset):
        n, t = dataset.num_regions, dataset.num_types
        assert dataset.store_counts.shape == (n, t)
        assert dataset.commercial.shape == (n, t, 2)
        assert dataset.preference_features.shape == (n, t)
        assert dataset.delivery_time_feature.shape == (n,)
        assert dataset.region_features.shape[0] == n

    def test_type_index(self, dataset):
        assert dataset.type_names[dataset.type_index("fruit")] == "fruit"
        with pytest.raises(KeyError):
            dataset.type_index("bogus")

    def test_analysis_archetypes(self, dataset):
        regions = dataset.analysis.regions_of("suburb")
        assert all(0 <= r < dataset.num_regions for r in regions)

    def test_analysis_without_archetypes_raises(self):
        from repro.data import AnalysisHandles

        with pytest.raises(ValueError):
            AnalysisHandles().regions_of("suburb")

    def test_adaption_features_normalised(self, dataset):
        assert dataset.preference_features.max() <= 1.0 + 1e-12
        assert dataset.delivery_time_feature.max() <= 1.0 + 1e-12


class TestSplit:
    def test_disjoint_and_complete(self, dataset, split):
        train = {tuple(p) for p in split.train_pairs}
        test = {tuple(p) for p in split.test_pairs}
        assert not train & test
        total = len(dataset.store_regions) * dataset.num_types
        assert len(train) + len(test) == total

    def test_roughly_80_20(self, dataset, split):
        frac = len(split.train_pairs) / (
            len(split.train_pairs) + len(split.test_pairs)
        )
        assert 0.7 < frac < 0.9

    def test_every_type_has_test_candidates(self, dataset, split):
        for a in range(dataset.num_types):
            assert len(split.test_regions_for_type(a)) >= 1
            assert len(split.train_regions_for_type(a)) >= 1

    def test_deterministic_in_seed(self, dataset):
        a = dataset.split(seed=3)
        b = dataset.split(seed=3)
        assert np.array_equal(a.train_pairs, b.train_pairs)

    def test_different_seeds_differ(self, dataset):
        a = dataset.split(seed=3)
        b = dataset.split(seed=4)
        assert not np.array_equal(a.train_pairs, b.train_pairs)

    def test_validation_rejects_overlap(self):
        pairs = np.array([[0, 0], [1, 0]])
        with pytest.raises(ValueError):
            InteractionSplit(train_pairs=pairs, test_pairs=pairs[:1])

    def test_validation_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            InteractionSplit(
                train_pairs=np.zeros((2, 3), dtype=int),
                test_pairs=np.zeros((1, 2), dtype=int),
            )

    def test_split_interactions_validates(self):
        with pytest.raises(ValueError):
            split_interactions(np.array([1]), 2)
        with pytest.raises(ValueError):
            split_interactions(np.array([1, 2, 3]), 2, train_frac=1.0)


@settings(max_examples=20, deadline=None)
@given(
    n_regions=st.integers(3, 30),
    n_types=st.integers(1, 6),
    frac=st.floats(0.5, 0.9),
    seed=st.integers(0, 99),
)
def test_property_split_invariants(n_regions, n_types, frac, seed):
    regions = np.arange(100, 100 + n_regions)
    split = split_interactions(regions, n_types, train_frac=frac, seed=seed)
    # Per type: disjoint, complete, both folds non-empty.
    for a in range(n_types):
        train = set(split.train_regions_for_type(a).tolist())
        test = set(split.test_regions_for_type(a).tolist())
        assert not train & test
        assert train | test == set(regions.tolist())
        assert train and test
