"""Geographic feature extraction (Section III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    entropy,
    normalize_columns,
    poi_diversity,
    region_feature_matrix,
    store_diversity,
    traffic_convenience,
)


class TestEntropy:
    def test_uniform_is_log_n(self):
        p = np.ones((1, 4))
        assert entropy(p)[0] == pytest.approx(np.log(4))

    def test_point_mass_is_zero(self):
        p = np.array([[0.0, 1.0, 0.0]])
        assert entropy(p)[0] == 0.0

    def test_all_zero_row_is_zero(self):
        assert entropy(np.zeros((1, 5)))[0] == 0.0

    def test_scale_invariant(self):
        p = np.array([[1.0, 2.0, 3.0]])
        assert entropy(p)[0] == pytest.approx(entropy(p * 10)[0])

    def test_batch(self):
        p = np.array([[1, 1], [1, 0]], dtype=float)
        out = entropy(p)
        assert out[0] == pytest.approx(np.log(2))
        assert out[1] == 0.0


class TestDiversity:
    def test_poi_diversity_shape(self):
        counts = np.random.default_rng(0).poisson(3, size=(10, 6))
        assert poi_diversity(counts).shape == (10,)

    def test_store_diversity_monotone_in_spread(self):
        concentrated = np.array([[10, 0, 0]])
        spread = np.array([[4, 3, 3]])
        assert store_diversity(spread)[0] > store_diversity(concentrated)[0]


class TestTrafficConvenience:
    def test_stacks_columns(self):
        out = traffic_convenience(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert out.shape == (2, 2)
        assert np.allclose(out[:, 0], [1, 2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            traffic_convenience(np.zeros(2), np.zeros(3))


class TestFeatureMatrix:
    def test_layout_and_normalisation(self):
        rng = np.random.default_rng(1)
        pois = rng.poisson(5, size=(8, 4)).astype(float)
        inter = rng.poisson(3, size=8).astype(float)
        roads = rng.poisson(6, size=8).astype(float)
        stores = rng.poisson(2, size=(8, 3)).astype(float)
        out = region_feature_matrix(pois, inter, roads, stores)
        assert out.shape == (8, 4 + 1 + 2 + 1)
        assert out.max() <= 1.0 + 1e-12
        assert out.min() >= 0.0

    def test_unnormalised(self):
        pois = np.full((2, 2), 10.0)
        out = region_feature_matrix(
            pois, np.zeros(2), np.zeros(2), np.ones((2, 2)), normalize=False
        )
        assert out[:, :2].max() == 10.0


class TestNormalizeColumns:
    def test_scales_to_unit_max(self):
        m = np.array([[1.0, 0.0], [4.0, 0.0]])
        out = normalize_columns(m)
        assert out[:, 0].max() == 1.0
        assert np.allclose(out[:, 1], 0.0)  # zero column untouched

    def test_does_not_mutate_input(self):
        m = np.array([[2.0]])
        normalize_columns(m)
        assert m[0, 0] == 2.0


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 10),
    cols=st.integers(1, 6),
    seed=st.integers(0, 100),
)
def test_property_entropy_bounds(rows, cols, seed):
    """0 <= entropy <= log(num_types) always."""
    counts = np.random.default_rng(seed).poisson(2, size=(rows, cols)).astype(float)
    h = entropy(counts)
    assert np.all(h >= -1e-12)
    assert np.all(h <= np.log(max(cols, 1)) + 1e-9)
