"""Columnar order log (``OrderTable``): view semantics and bit-identity.

The struct-of-arrays order representation must be indistinguishable from
the ``List[OrderRecord]`` it replaces: records materialised from the table
compare equal field-for-field, every downstream artifact (aggregates,
dataset features, graphs, a trained model) is *identical* -- not close --
across the ``O2_ORDER_TABLE`` ablation, and the cache round-trips columns
without touching a single record object.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.city import CityConfig
from repro.city.fastsim import use_fast_sim, use_order_table
from repro.city.simulator import simulate_uncached
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.data.aggregates import OrderAggregates
from repro.data.dataset import SiteRecDataset
from repro.data.ordertable import COLUMNS, OrderRecordSeq, OrderTable
from repro.graphs.hetero import build_hetero_multigraph
from repro.nn import init


def _config(**overrides) -> CityConfig:
    base = dict(
        rows=7, cols=7, num_days=4, num_couriers=60, seed=3,
        base_population=2200.0,
    )
    base.update(overrides)
    return CityConfig(**base)


@pytest.fixture(scope="module")
def both_sims():
    """The same city simulated as a record list and as a columnar table."""
    with use_order_table(False):
        listed = simulate_uncached(_config())
    with use_order_table(True):
        columnar = simulate_uncached(_config())
    return listed, columnar


class TestViewSemantics:
    def test_is_lazy_view(self, both_sims):
        _, columnar = both_sims
        assert isinstance(columnar.orders, OrderRecordSeq)
        assert columnar.order_table is not None
        assert len(columnar.orders) == len(columnar.order_table)

    def test_indexing_and_slicing(self, both_sims):
        listed, columnar = both_sims
        view = columnar.orders
        assert view[0] == listed.orders[0]
        assert view[-1] == listed.orders[-1]
        assert view[3:7] == listed.orders[3:7]
        with pytest.raises(IndexError):
            view[len(view)]

    def test_iteration_matches(self, both_sims):
        listed, columnar = both_sims
        for ref, got in zip(listed.orders, columnar.orders):
            assert ref == got

    def test_equality_both_directions(self, both_sims):
        listed, columnar = both_sims
        assert columnar.orders == listed.orders
        assert listed.orders == columnar.orders  # reflected __eq__
        assert not (columnar.orders != listed.orders)

    def test_record_fields_exact(self, both_sims):
        listed, columnar = both_sims
        ref, got = listed.orders[5], columnar.orders[5]
        for field in ref.__dataclass_fields__:
            assert getattr(ref, field) == getattr(got, field), field

    def test_records_smaller_than_objects(self, both_sims):
        _, columnar = both_sims
        table = columnar.order_table
        # ~100 B/order columnar vs ~400 B/order as objects.
        assert table.nbytes < 150 * len(table)


class TestTableOps:
    def test_array_roundtrip(self, both_sims):
        _, columnar = both_sims
        table = columnar.order_table
        back = OrderTable.from_arrays(table.to_arrays())
        assert back.records_view() == columnar.orders
        assert back.sha256() == table.sha256()

    def test_replace_columns_copy_on_write(self, both_sims):
        _, columnar = both_sims
        table = columnar.order_table
        bumped = table.replace_columns(
            distance_m=table.column("distance_m") + 1.0
        )
        assert bumped.sha256() != table.sha256()
        assert bumped.column("created_minute") is table.column("created_minute")
        with pytest.raises(KeyError):
            table.replace_columns(no_such_column=np.zeros(len(table)))

    def test_concat_in_chunk_order(self, both_sims):
        _, columnar = both_sims
        table = columnar.order_table
        half = len(table) // 2
        chunks = [
            {name: table.column(name)[:half] for name in COLUMNS},
            {name: table.column(name)[half:] for name in COLUMNS},
        ]
        stitched = OrderTable.concat(chunks, table.registry)
        assert stitched.sha256() == table.sha256()


class TestDownstreamIdentity:
    def test_aggregates_identical(self, both_sims):
        listed, columnar = both_sims
        n = listed.land.num_regions
        t = listed.config.num_store_types
        ref = OrderAggregates.from_orders(listed.orders, n, t)
        got = OrderAggregates.from_orders(columnar.orders, n, t)
        for name in ("counts_sa", "counts_sat", "counts_uat",
                     "farthest_distance", "mean_distance",
                     "region_delivery_time", "total_orders_s"):
            assert np.array_equal(getattr(ref, name), getattr(got, name)), name
        assert ref.pair_stats == got.pair_stats
        for p_ref, p_got in zip(ref.pair_tables, got.pair_tables):
            assert np.array_equal(p_ref.keys, p_got.keys)
            assert np.array_equal(p_ref.counts, p_got.counts)

    def test_mobility_edges_identical(self, both_sims):
        listed, columnar = both_sims
        n = listed.land.num_regions
        t = listed.config.num_store_types
        ref = OrderAggregates.from_orders(listed.orders, n, t)
        got = OrderAggregates.from_orders(columnar.orders, n, t)
        for p in range(len(ref.pair_tables)):
            assert ref.mobility_edges(p) == got.mobility_edges(p)

    def test_dataset_and_graph_identical(self, both_sims):
        listed, columnar = both_sims
        ref = SiteRecDataset.from_simulation(listed)
        got = SiteRecDataset.from_simulation(columnar)
        assert np.array_equal(ref.region_features, got.region_features)
        assert np.array_equal(ref.targets, got.targets)
        g_ref = build_hetero_multigraph(ref)
        g_got = build_hetero_multigraph(got)
        assert np.array_equal(g_ref.sa_src_s, g_got.sa_src_s)
        assert np.array_equal(g_ref.sa_attr, g_got.sa_attr)
        for period, sub_ref in g_ref.subgraphs.items():
            sub_got = g_got.subgraphs[period]
            assert np.array_equal(sub_ref.ua_src_a, sub_got.ua_src_a)
            assert np.array_equal(sub_ref.ua_attr, sub_got.ua_attr)

    def test_fit_identical_across_ablation(self, both_sims):
        """Training is unchanged end-to-end: same losses, same parameters."""
        listed, columnar = both_sims
        digests, losses = [], []
        for sim in (listed, columnar):
            dataset = SiteRecDataset.from_simulation(sim)
            split = dataset.split(seed=2)
            init.seed(5)
            model = O2SiteRec(
                dataset, split, O2SiteRecConfig(capacity_dim=4, embedding_dim=20)
            )
            result = Trainer(model, TrainConfig(epochs=3, lr=5e-3)).fit(
                split.train_pairs, dataset.pair_targets(split.train_pairs)
            )
            losses.append(result.train_losses)
            digest = hashlib.sha256()
            for name, param in model.named_parameters():
                digest.update(name.encode())
                digest.update(np.ascontiguousarray(param.data).tobytes())
            digests.append(digest.hexdigest())
        assert losses[0] == losses[1]
        assert digests[0] == digests[1]


class TestResynthesis:
    def test_observation_noise_table_matches_list(self):
        config = _config(observation_noise=0.3, seed=9)
        with use_order_table(False):
            listed = simulate_uncached(config)
        with use_order_table(True):
            columnar = simulate_uncached(config)
        assert columnar.orders == listed.orders

    def test_reference_loop_matches_table(self):
        """O2_FAST_SIM=0 x O2_ORDER_TABLE=1: reference records == view."""
        config = _config(seed=13)
        with use_fast_sim(False):
            ref = simulate_uncached(config)
        with use_fast_sim(True), use_order_table(True):
            fast = simulate_uncached(config)
        assert fast.orders == ref.orders
