"""Event-driven courier dispatch (the agent-based substrate)."""

import numpy as np
import pytest

from repro.city import CityConfig, DispatchSimulator, simulate
from repro.city.couriers import build_fleet
from repro.city.landuse import synthesize_land_use
from repro.data.periods import TimePeriod


@pytest.fixture(scope="module")
def agent_sim():
    return simulate(
        CityConfig(
            rows=7, cols=7, num_days=3, num_couriers=45, seed=3,
            dispatch_mode="agents",
        )
    )


@pytest.fixture(scope="module")
def formula_sim():
    return simulate(
        CityConfig(rows=7, cols=7, num_days=3, num_couriers=45, seed=3)
    )


class TestDispatchMode:
    def test_config_validates_mode(self):
        with pytest.raises(ValueError):
            CityConfig(dispatch_mode="teleport")

    def test_orders_produced(self, agent_sim):
        assert agent_sim.num_orders > 500

    def test_timestamps_valid(self, agent_sim):
        for o in agent_sim.orders[:1000]:
            assert o.created_minute <= o.accepted_minute
            assert o.accepted_minute <= o.pickup_minute <= o.delivered_minute

    def test_courier_ids_from_fleet(self, agent_sim):
        fleet_ids = {
            c for pool in agent_sim.fleet.couriers_by_region for c in pool
        }
        assert all(o.courier_id in fleet_ids for o in agent_sim.orders[:500])

    def test_differs_from_formula_mode(self, agent_sim, formula_sim):
        # Same demand process, different timing process.
        a = np.mean([o.total_minutes for o in agent_sim.orders])
        f = np.mean([o.total_minutes for o in formula_sim.orders])
        assert a != pytest.approx(f, rel=0.01)

    def test_rush_hours_wait_longer_than_morning(self, agent_sim):
        per = {}
        for o in agent_sim.orders:
            per.setdefault(o.period, []).append(o.total_minutes)
        noon = np.mean(per[TimePeriod.NOON_RUSH])
        morning = np.mean(per[TimePeriod.MORNING])
        assert noon > morning


class TestDispatchSimulator:
    @pytest.fixture()
    def simulator(self):
        cfg = CityConfig(rows=6, cols=6, num_days=2, num_couriers=30, seed=5)
        rng = np.random.default_rng(5)
        land = synthesize_land_use(cfg, rng)
        fleet = build_fleet(cfg, land, rng)
        return DispatchSimulator(cfg, land, fleet, np.random.default_rng(0))

    def test_courier_moves_to_customer(self, simulator, formula_sim):
        order = formula_sim.orders[0]
        assigned = simulator.assign(order)
        assert assigned is not None
        courier = next(
            c for c in simulator._couriers if c.courier_id == assigned.courier_id
        )
        grid = simulator.land.grid
        cx, cy = grid.from_lonlat(assigned.customer_lon, assigned.customer_lat)
        assert courier.x == pytest.approx(cx)
        assert courier.y == pytest.approx(cy)
        assert courier.available_at > assigned.delivered_minute

    def test_busy_courier_not_double_booked(self, simulator, formula_sim):
        o1, o2 = formula_sim.orders[0], formula_sim.orders[1]
        a1 = simulator.assign(o1)
        a2 = simulator.assign(o2)
        if a1.courier_id == a2.courier_id:
            assert a2.pickup_minute >= a1.delivered_minute

    def test_admission_control_rejects_when_saturated(self, simulator, formula_sim):
        # Saturate every courier far into the future.
        simulator._available[:] = 1e9
        for c in simulator._couriers:
            c.available_at = 1e9
        assert simulator.assign(formula_sim.orders[0]) is None
        assert simulator.rejected == 1

    def test_invalid_max_wait(self, simulator):
        with pytest.raises(ValueError):
            DispatchSimulator(
                simulator.config,
                simulator.land,
                simulator.fleet,
                np.random.default_rng(0),
                max_wait_minutes=0,
            )

    def test_utilisation_bounds(self, simulator):
        u = simulator.utilisation(12 * 60.0)
        assert 0.0 <= u <= 1.0

    def test_on_shift_headcount_matches_schedule(self, simulator):
        from repro.city.couriers import ACTIVE_FRACTION

        n = len(simulator._couriers)
        for period in TimePeriod:
            start_hour = period.hours[0]
            mask = simulator._on_shift_mask(start_hour * 60.0)
            expected = max(int(round(ACTIVE_FRACTION[period] * n)), 1)
            assert mask.sum() == expected
