"""Pipeline artifact cache: correctness, invalidation and fail-soft."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.city import CityConfig
from repro.data import cache as cache_mod
from repro.data.cache import (
    LRUCache,
    cache_key,
    cache_root,
    cache_stats,
    cached_dataset,
    clear_cache,
    load_entry,
    pipeline_cache_enabled,
    simulate_cached,
    store_entry,
)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the cache at a private directory for one test."""
    root = tmp_path / "cache"
    monkeypatch.setenv("O2_PIPELINE_CACHE", str(root))
    monkeypatch.delenv("O2_PIPELINE_CACHE_MB", raising=False)
    return root


def _tiny_config(**overrides) -> CityConfig:
    base = dict(
        rows=6, cols=6, num_days=3, num_couriers=50, seed=3,
        base_population=2200.0,
    )
    base.update(overrides)
    return CityConfig(**base)


# ---------------------------------------------------------------------------
# LRUCache.
# ---------------------------------------------------------------------------

def test_lru_cache_evicts_least_recently_used():
    lru = LRUCache(maxsize=2)
    lru["a"] = 1
    lru["b"] = 2
    assert lru.get("a") == 1  # refreshes "a": "b" is now oldest
    lru["c"] = 3
    assert "b" not in lru
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert len(lru) == 2
    lru.clear()
    assert len(lru) == 0
    assert lru.get("a", "missing") == "missing"


def test_lru_cache_rejects_zero_size():
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)


# ---------------------------------------------------------------------------
# Configuration and keys.
# ---------------------------------------------------------------------------

def test_cache_root_semantics(monkeypatch, tmp_path):
    monkeypatch.setenv("O2_PIPELINE_CACHE", "0")
    assert cache_root() is None and not pipeline_cache_enabled()
    monkeypatch.setenv("O2_PIPELINE_CACHE", "off")
    assert cache_root() is None
    monkeypatch.setenv("O2_PIPELINE_CACHE", str(tmp_path / "x"))
    assert cache_root() == tmp_path / "x"
    monkeypatch.setenv("O2_PIPELINE_CACHE", "1")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert cache_root() == tmp_path / "xdg" / "o2-siterec" / "pipeline"


def test_cache_key_is_stable_and_sensitive():
    config = _tiny_config()
    assert cache_key("simulation", config) == cache_key("simulation", config)
    # Every component of the tuple must move the key.
    assert cache_key("simulation", config) != cache_key("dataset", config)
    assert cache_key("simulation", config) != cache_key(
        "simulation", _tiny_config(seed=4)
    )
    assert cache_key("simulation", config) != cache_key(
        "simulation", _tiny_config(num_days=4)
    )
    arr = np.arange(5.0)
    changed = arr.copy()
    changed[0] = -1.0
    assert cache_key("x", arr) != cache_key("x", changed)


def test_cache_key_embeds_pipeline_version(monkeypatch):
    config = _tiny_config()
    before = cache_key("simulation", config)
    monkeypatch.setattr(cache_mod, "PIPELINE_VERSION", "test-bump")
    assert cache_key("simulation", config) != before


# ---------------------------------------------------------------------------
# Entry storage.
# ---------------------------------------------------------------------------

def test_store_load_round_trip(cache_dir):
    arrays = {"a": np.arange(12.0).reshape(3, 4), "b": np.arange(3)}
    payload = {"nested": [1, "two", 3.0]}
    key = cache_key("test", "round-trip")
    assert store_entry(key, arrays=arrays, payload=payload, meta={"n": 3})

    entry = load_entry(key)
    assert entry is not None
    np.testing.assert_array_equal(entry.arrays["a"], arrays["a"])
    np.testing.assert_array_equal(entry.arrays["b"], arrays["b"])
    assert entry.payload == payload
    assert entry.meta == {"n": 3}
    # Arrays come back memory-mapped by default.
    assert isinstance(entry.arrays["a"], np.memmap)
    assert not isinstance(load_entry(key, mmap=False).arrays["a"], np.memmap)


def test_store_is_noop_when_disabled(monkeypatch):
    monkeypatch.setenv("O2_PIPELINE_CACHE", "0")
    assert not store_entry(cache_key("test", "x"), payload=1)
    assert load_entry(cache_key("test", "x")) is None
    assert cache_stats() == {
        "enabled": False, "root": None, "entries": 0, "bytes": 0,
    }


def test_corrupt_entry_is_dropped_and_missed(cache_dir):
    key = cache_key("test", "corrupt")
    store_entry(key, arrays={"a": np.arange(4)}, payload=[1, 2])
    entry_dir = cache_dir / key[:2] / key
    (entry_dir / "payload.pkl").write_bytes(b"not a pickle")
    assert load_entry(key) is None  # fail-soft: reported as a miss
    assert not entry_dir.exists()  # and the damaged entry is gone


def test_eviction_respects_size_bound(cache_dir, monkeypatch):
    monkeypatch.setenv("O2_PIPELINE_CACHE_MB", "0.25")  # 256 KiB budget
    big = np.zeros(25_000)  # ~200 KB per entry
    first = cache_key("test", "first")
    second = cache_key("test", "second")
    store_entry(first, arrays={"a": big})
    store_entry(second, arrays={"a": big})
    # Both cannot fit: the older entry was evicted, the newer survives.
    assert load_entry(first) is None
    assert load_entry(second) is not None
    assert cache_stats()["entries"] == 1


def test_clear_cache(cache_dir):
    store_entry(cache_key("test", 1), payload=1)
    store_entry(cache_key("test", 2), payload=2)
    assert cache_stats()["entries"] == 2
    assert clear_cache() == 2
    assert cache_stats()["entries"] == 0


# ---------------------------------------------------------------------------
# High-level artifacts.
# ---------------------------------------------------------------------------

def test_simulate_cached_replays_identically(cache_dir):
    from repro.city.simulator import simulate_uncached

    config = _tiny_config()
    fresh = simulate_uncached(config)

    cold = simulate_cached(config)
    assert cache_stats()["entries"] == 1
    warm = simulate_cached(config)  # served from disk

    assert cold.orders == fresh.orders
    assert warm.orders == fresh.orders
    # The replayed result also rebuilds the pre-order stages exactly.
    assert warm.num_stores == fresh.num_stores
    np.testing.assert_array_equal(warm.fleet.ratio, fresh.fleet.ratio)
    np.testing.assert_array_equal(
        warm.store_type_counts(), fresh.store_type_counts()
    )


def test_simulate_cached_misses_on_config_change(cache_dir):
    simulate_cached(_tiny_config())
    assert cache_stats()["entries"] == 1
    simulate_cached(_tiny_config(seed=5))
    assert cache_stats()["entries"] == 2


def test_cached_dataset_round_trip_and_invalidation(cache_dir):
    cold, cold_split = cached_dataset("real", 0, 0.35)
    entries_after_cold = cache_stats()["entries"]
    warm, warm_split = cached_dataset("real", 0, 0.35)
    assert cache_stats()["entries"] == entries_after_cold  # pure hit

    np.testing.assert_array_equal(warm.targets, cold.targets)
    np.testing.assert_array_equal(warm_split.train_pairs, cold_split.train_pairs)
    np.testing.assert_array_equal(warm_split.test_pairs, cold_split.test_pairs)

    # Different seed -> different artifact, not a stale hit.
    other, _ = cached_dataset("real", 1, 0.35)
    assert cache_stats()["entries"] > entries_after_cold
    assert not np.array_equal(other.targets, cold.targets)


def test_cached_dataset_version_bump_invalidates(cache_dir, monkeypatch):
    cached_dataset("real", 0, 0.35)
    before = cache_stats()["entries"]
    monkeypatch.setattr(cache_mod, "PIPELINE_VERSION", "test-bump")
    cached_dataset("real", 0, 0.35)  # old entries unreadable under new key
    assert cache_stats()["entries"] > before


def test_cached_dataset_unknown_kind(cache_dir):
    with pytest.raises(ValueError, match="unknown dataset kind"):
        cached_dataset("nope", 0, 0.35)


def test_cached_dataset_matches_uncached(cache_dir, monkeypatch):
    cached, cached_split = cached_dataset("real", 0, 0.35)
    monkeypatch.setenv("O2_PIPELINE_CACHE", "0")
    plain, plain_split = cached_dataset("real", 0, 0.35)
    np.testing.assert_array_equal(cached.targets, plain.targets)
    np.testing.assert_array_equal(
        cached_split.train_pairs, plain_split.train_pairs
    )


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def test_cli_stats_clear_warm(cache_dir, capsys):
    assert cache_mod._main(["warm", "--scale", "0.35", "--rounds", "1"]) == 0
    out = capsys.readouterr().out
    assert "warmed real seed=0" in out
    assert cache_stats()["entries"] >= 1

    assert cache_mod._main(["stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["enabled"] and stats["entries"] >= 1

    assert cache_mod._main(["clear"]) == 0
    assert "removed" in capsys.readouterr().out
    assert cache_stats()["entries"] == 0


def test_cli_warm_fails_when_disabled(monkeypatch, capsys):
    monkeypatch.setenv("O2_PIPELINE_CACHE", "0")
    assert cache_mod._main(["warm"]) == 1
    assert "disabled" in capsys.readouterr().out
