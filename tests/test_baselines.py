"""All six baselines: construction, fitting, prediction, settings."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    PairFeatureBuilder,
    SiteRecBaseline,
    merge_hetero_graph,
)
from repro.core import TrainConfig, Trainer
from repro.graphs import build_hetero_multigraph
from repro.nn import init

ALL_BASELINES = list(BASELINE_REGISTRY.items())


class TestRegistry:
    def test_six_baselines_in_paper_order(self):
        assert list(BASELINE_REGISTRY) == [
            "CityTransfer",
            "BL-G-CoSVD",
            "GC-MC",
            "GraphRec",
            "RGCN",
            "HGT",
        ]

    def test_names_match(self):
        for name, cls in ALL_BASELINES:
            assert cls.name == name


class TestPairFeatureBuilder:
    def test_original_dim(self, micro_dataset):
        builder = PairFeatureBuilder(micro_dataset, "original")
        pairs = np.array([[int(micro_dataset.store_regions[0]), 0]])
        assert builder(pairs).shape == (1, builder.dim)

    def test_adaption_adds_six(self, micro_dataset):
        orig = PairFeatureBuilder(micro_dataset, "original")
        adapt = PairFeatureBuilder(micro_dataset, "adaption")
        assert adapt.dim == orig.dim + 6

    def test_invalid_setting(self, micro_dataset):
        with pytest.raises(ValueError):
            PairFeatureBuilder(micro_dataset, "both")


class TestMergedGraph:
    def test_union_of_periods(self, micro_dataset, micro_split):
        multi = build_hetero_multigraph(micro_dataset, split=micro_split)
        merged = merge_hetero_graph(multi)
        per_period_max = max(
            multi.subgraph(p).num_su_edges for p in multi.subgraphs
        )
        assert len(merged.su_src_u) >= per_period_max

    def test_no_duplicate_edges(self, micro_dataset, micro_split):
        multi = build_hetero_multigraph(micro_dataset, split=micro_split)
        merged = merge_hetero_graph(multi)
        su = list(zip(merged.su_src_u.tolist(), merged.su_dst_s.tolist()))
        assert len(su) == len(set(su))
        ua = list(zip(merged.ua_src_a.tolist(), merged.ua_dst_u.tolist()))
        assert len(ua) == len(set(ua))


@pytest.mark.parametrize("name,factory", ALL_BASELINES)
@pytest.mark.parametrize("setting", ["original", "adaption"])
class TestEachBaseline:
    def test_fit_improves_and_predicts(
        self, name, factory, setting, micro_dataset, micro_split
    ):
        init.seed(0)
        model = factory(micro_dataset, micro_split, setting=setting)
        pairs = micro_split.train_pairs
        targets = micro_dataset.pair_targets(pairs)
        result = Trainer(model, TrainConfig(epochs=8, lr=5e-3, patience=50)).fit(
            pairs, targets
        )
        assert result.train_losses[-1] < result.train_losses[0]

        predictions = model.predict(micro_split.test_pairs)
        assert predictions.shape == (len(micro_split.test_pairs),)
        assert np.all(np.isfinite(predictions))

    def test_predict_deterministic(
        self, name, factory, setting, micro_dataset, micro_split
    ):
        init.seed(0)
        model = factory(micro_dataset, micro_split, setting=setting)
        pairs = micro_split.train_pairs[:16]
        targets = micro_dataset.pair_targets(pairs)
        Trainer(model, TrainConfig(epochs=2, lr=5e-3)).fit(pairs, targets)
        test = micro_split.test_pairs[:8]
        assert np.allclose(model.predict(test), model.predict(test))


class TestBaselineSpecifics:
    def test_gcmc_requires_edges(self, micro_dataset, micro_split):
        from repro.baselines import GCMC

        model = GCMC(micro_dataset, micro_split)
        with pytest.raises(RuntimeError):
            model.predict(micro_split.test_pairs[:2])

    def test_graphrec_requires_interactions(self, micro_dataset, micro_split):
        from repro.baselines import GraphRec

        model = GraphRec(micro_dataset, micro_split)
        with pytest.raises(RuntimeError):
            model.predict(micro_split.test_pairs[:2])

    def test_cosvd_side_loss(self, micro_dataset, micro_split):
        from repro.baselines import BLGCoSVD

        model = BLGCoSVD(micro_dataset, micro_split, setting="adaption")
        pairs = micro_split.train_pairs[:32]
        targets = micro_dataset.pair_targets(pairs)
        _, o2, side = model.loss(pairs, targets)
        assert side > 0  # co-reconstruction term active

    def test_invalid_setting_rejected(self, micro_dataset, micro_split):
        from repro.baselines import CityTransfer

        with pytest.raises(ValueError):
            CityTransfer(micro_dataset, micro_split, setting="extended")

    def test_hgt_head_divisibility(self, micro_dataset, micro_split):
        from repro.baselines import HGT

        with pytest.raises(ValueError):
            HGT(micro_dataset, micro_split, latent_dim=25, num_heads=4)
