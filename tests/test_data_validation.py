"""Order-log validation (linting)."""

import dataclasses

import pytest

from repro.data import (
    OrderLogValidationError,
    validate_order_log,
)


@pytest.fixture(scope="module")
def context(sim):
    return dict(
        num_regions=sim.land.num_regions,
        num_types=sim.config.num_store_types,
        num_days=sim.config.num_days,
        stores=[s.record for s in sim.stores],
    )


class TestCleanLog:
    def test_simulated_log_is_clean(self, sim, context):
        report = validate_order_log(sim.orders, **context)
        assert report.ok, [str(f) for f in report.errors[:5]]
        assert report.orders_checked == sim.num_orders

    def test_summary_mentions_counts(self, sim, context):
        report = validate_order_log(sim.orders[:100], **context)
        assert "100 orders checked" in report.summary()


class TestCorruptions:
    def corrupt(self, order, **changes):
        return dataclasses.replace(order, **changes)

    def test_bad_region_detected(self, sim, context):
        bad = self.corrupt(sim.orders[0], store_region=10**6)
        report = validate_order_log([bad], **context)
        assert not report.ok
        assert any(f.check == "region_range" for f in report.errors)

    def test_bad_type_detected(self, sim, context):
        bad = self.corrupt(sim.orders[0], store_type=999)
        report = validate_order_log([bad], **context)
        assert any(f.check == "type_range" for f in report.errors)

    def test_window_violation(self, sim, context):
        o = sim.orders[0]
        bad = self.corrupt(
            o,
            created_minute=1e9,
            accepted_minute=1e9 + 1,
            pickup_minute=1e9 + 2,
            delivered_minute=1e9 + 3,
        )
        report = validate_order_log([bad], **context)
        assert any(f.check == "window" for f in report.errors)

    def test_impossible_speed_warns(self, sim, context):
        o = sim.orders[0]
        bad = self.corrupt(o, distance_m=o.delivery_minutes * 5000.0)
        report = validate_order_log([bad], **context)
        assert any(f.check == "speed" for f in report.warnings)
        assert report.ok  # warnings do not fail the log

    def test_unknown_store(self, sim, context):
        bad = self.corrupt(sim.orders[0], store_id="S999999")
        report = validate_order_log([bad], **context)
        assert any(f.check == "registry" for f in report.errors)

    def test_registry_region_mismatch(self, sim, context):
        o = sim.orders[0]
        other = 0 if o.store_region != 0 else 1
        bad = self.corrupt(o, store_region=other)
        report = validate_order_log([bad], **context)
        assert any("region mismatch" in f.message for f in report.errors)

    def test_duplicate_ids(self, sim, context):
        o = sim.orders[0]
        report = validate_order_log([o, o], **context)
        assert any(f.check == "duplicate_id" for f in report.errors)

    def test_strict_raises(self, sim, context):
        bad = self.corrupt(sim.orders[0], store_region=10**6)
        with pytest.raises(OrderLogValidationError):
            validate_order_log([bad], strict=True, **context)

    def test_max_findings_truncates(self, sim, context):
        bad = [
            self.corrupt(o, store_region=10**6) for o in sim.orders[:50]
        ]
        report = validate_order_log(bad, max_findings=10, **context)
        assert any(f.check == "truncated" for f in report.warnings)
        assert len(report.findings) <= 12
