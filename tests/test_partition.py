"""Grid-tile partitioner invariants (``repro.graphs.partition``).

The sharded propagation path trusts exactly four properties of the
partitioner, so each is pinned here: near-equal contiguous bands for
non-divisible dimensions, identity behaviour for the single-tile
degenerate case, total destination-side edge ownership (halo
completeness), and tolerance of tiles that happen to own zero stores.
The windowed hetero-graph builder -- the metropolis-scale memory fix that
rides the same PR -- is pinned equal to the dense construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.hetero import build_hetero_multigraph
from repro.graphs.partition import GridTilePartition, partition_grid


def test_non_divisible_dimensions_split_near_equal():
    part = GridTilePartition(7, 5, 3, 2)
    # array_split semantics: first bands get the extra row/col.
    assert part.row_splits.tolist() == [0, 3, 5, 7]
    assert part.col_splits.tolist() == [0, 3, 5]
    sizes = [len(part.tile_regions(t)) for t in range(part.num_tiles)]
    assert sum(sizes) == part.num_regions
    assert max(sizes) - min(sizes) <= 5  # (3x3) vs (2x2) corner tiles
    # Contiguity: each tile is an axis-aligned rectangle of region ids.
    for tile in range(part.num_tiles):
        r0, r1, c0, c1 = part.tile_bounds(tile)
        regions = part.tile_regions(tile)
        rows, cols = np.divmod(regions, part.cols)
        assert rows.min() == r0 and rows.max() == r1 - 1
        assert cols.min() == c0 and cols.max() == c1 - 1


def test_every_region_owned_exactly_once():
    part = GridTilePartition(6, 9, 2, 3)
    seen = np.concatenate(
        [part.tile_regions(t) for t in range(part.num_tiles)]
    )
    assert np.array_equal(np.sort(seen), np.arange(part.num_regions))
    for tile in range(part.num_tiles):
        assert np.all(part.owner[part.tile_regions(tile)] == tile)


def test_single_tile_is_identity_partition():
    part = GridTilePartition(5, 4, 1, 1)
    assert part.num_tiles == 1
    assert np.array_equal(part.tile_regions(0), np.arange(20))
    assert np.all(part.owner == 0)
    assert part.halo_regions(0).size == 0
    edges = np.array([0, 7, 19, 3])
    assert np.all(part.edge_owner(edges) == 0)
    assert part.cut_fraction(edges, edges[::-1]) == 0.0


def test_halo_completeness_every_cross_tile_edge_has_one_owner():
    rng = np.random.default_rng(0)
    part = GridTilePartition(8, 8, 2, 2)
    # Random short-range edges (radius <= 2 Chebyshev cells), like the
    # distance-thresholded graph planes.
    src_r = rng.integers(0, 8, 500)
    src_c = rng.integers(0, 8, 500)
    dst_r = np.clip(src_r + rng.integers(-2, 3, 500), 0, 7)
    dst_c = np.clip(src_c + rng.integers(-2, 3, 500), 0, 7)
    src = src_r * 8 + src_c
    dst = dst_r * 8 + dst_c
    owner = part.edge_owner(dst)
    # Ownership is a total function of dst: the per-tile edge sets
    # partition the edge list.
    counts = np.bincount(owner, minlength=part.num_tiles)
    assert counts.sum() == len(src)
    # Every cross-tile edge's source sits in the owning tile's halo ring.
    for tile in range(part.num_tiles):
        mine = owner == tile
        cross = mine & (part.owner[src] != tile)
        halo = set(part.halo_regions(tile, radius=2).tolist())
        assert all(int(r) in halo for r in src[cross])


def test_tile_with_zero_stores_yields_empty_band():
    # Stores clustered in the top rows: the bottom band owns none.
    part = GridTilePartition(6, 4, 3, 1)
    store_regions = np.array([0, 1, 5, 9], dtype=np.int64)  # rows 0-2 only
    cuts = part.row_splits * part.cols
    splits = np.searchsorted(store_regions, cuts)
    assert splits[-2] == splits[-1]  # last band: empty range, not an error
    bands = [
        store_regions[splits[i] : splits[i + 1]]
        for i in range(part.num_tiles)
    ]
    assert sum(len(b) for b in bands) == len(store_regions)
    assert len(bands[-1]) == 0


def test_partition_grid_caps_and_factors():
    part = partition_grid(100, 100, 8)
    assert part.num_tiles <= 8
    assert part.rows == 100 and part.cols == 100
    # A ribbon grid cannot host a square factorisation; splits degrade to
    # the longer axis and never exceed the request.
    ribbon = partition_grid(4, 100, 9)
    assert ribbon.num_tiles <= 9
    with pytest.raises(ValueError):
        GridTilePartition(4, 4, 5, 1)


def test_windowed_distance_builder_matches_dense(dataset):
    dense = build_hetero_multigraph(dataset, windowed_distances=False)
    windowed = build_hetero_multigraph(dataset, windowed_distances=True)
    assert np.array_equal(dense.sa_src_s, windowed.sa_src_s)
    assert np.array_equal(dense.sa_attr, windowed.sa_attr)
    for period, sub in dense.subgraphs.items():
        wsub = windowed.subgraphs[period]
        assert np.array_equal(sub.su_src_u, wsub.su_src_u)
        assert np.array_equal(sub.su_dst_s, wsub.su_dst_s)
        # Bitwise: both paths evaluate the same elementwise expressions.
        assert np.array_equal(sub.su_attr, wsub.su_attr)
        assert np.array_equal(sub.ua_attr, wsub.ua_attr)
