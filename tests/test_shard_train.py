"""Banded sharded training (``repro.core.shard_train``): bit-identity.

The training extension inherits the eval executor's contract and raises it:
not just forward values but **loss curves and every parameter byte** must
match the dense reference step -- across band counts, serial and forked
execution, kernel backends and the buffer-pool ablation -- because the
banded backward re-derives the reference gradients from per-band
recomputation plus block-deterministic master-side reductions.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro import parallel
from repro.core import shard, shard_train
from repro.core.model import O2SiteRec
from repro.core.recommender import set_batch_periods
from repro.core.trainer import TrainConfig, Trainer
from repro.nn import init
from repro.nn.attention import FactoredEdgeAttr, MultiHeadSegmentAttention
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, cnative, pool
from repro.tensor import memprof
from repro.tensor import plan as _plan
from repro.tensor.segment import SegmentPlan, get_plan


@pytest.fixture(autouse=True)
def _restore_toggles():
    """Every test leaves the global shard/pool/batching state untouched."""
    prev_tiles = shard.set_shard_tiles(None)
    shard.set_shard_tiles(prev_tiles)
    prev_train = shard.set_shard_train(None)
    shard.set_shard_train(prev_train)
    prev_procs = parallel.set_num_procs(None)
    parallel.set_num_procs(prev_procs)
    prev_c = cnative.set_c_kernels(True)
    cnative.set_c_kernels(prev_c)
    prev_pool = pool.set_buffer_pool(True)
    pool.set_buffer_pool(prev_pool)
    prev_bp = set_batch_periods(True)
    set_batch_periods(prev_bp)
    yield
    shard.set_shard_tiles(prev_tiles)
    shard.set_shard_train(prev_train)
    parallel.set_num_procs(prev_procs)
    cnative.set_c_kernels(prev_c)
    pool.set_buffer_pool(prev_pool)
    set_batch_periods(prev_bp)


def _params_sha(model) -> str:
    digest = hashlib.sha256()
    for param in model.parameters():
        digest.update(param.data.tobytes())
    return digest.hexdigest()


def _fit_fingerprint(dataset, split, pairs, targets, *, shard_train_on,
                     tiles=3, procs=0, compile_step=False):
    init.seed(0)
    prev = parallel.set_num_procs(procs)
    try:
        model = O2SiteRec(dataset, split=split)
        trainer = Trainer(
            model,
            TrainConfig(epochs=2, min_epochs=1, seed=0, shard_tiles=tiles,
                        shard_train=shard_train_on, compile_step=compile_step),
        )
        result = trainer.fit(pairs, targets)
    finally:
        parallel.set_num_procs(prev)
    return result.train_losses, result.validation_losses, _params_sha(model)


# ---------------------------------------------------------------------------
# Whole-fit bit-identity (the tentpole contract).
# ---------------------------------------------------------------------------


def test_banded_training_fit_bitwise(dataset, split):
    """Dense vs banded fits: loss curves and parameter bytes, float-exact.

    Eval sharding is pinned identically in both legs so the only moving
    part is the training step; the banded leg is checked serial at two
    band counts and through the forked worker pool.
    """
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    reference = _fit_fingerprint(dataset, split, pairs, targets,
                                 shard_train_on=False)

    shard_train.reset_shard_train_stats()
    banded = _fit_fingerprint(dataset, split, pairs, targets,
                              shard_train_on=True)
    stats = shard_train.shard_train_stats()
    assert stats["steps"] > 0, "training gate did not engage"
    assert stats["nodes"] > 0 and stats["bands"] > 0
    assert banded == reference

    # Non-divisible band count and the forked persistent pool.
    assert _fit_fingerprint(dataset, split, pairs, targets,
                            shard_train_on=True, tiles=5) == reference
    shard_train.reset_shard_train_stats()
    forked = _fit_fingerprint(dataset, split, pairs, targets,
                              shard_train_on=True, procs=2)
    assert forked == reference
    stats = shard_train.shard_train_stats()
    assert stats["fanout_tasks"] > 0, "forked leg did not fan out"
    assert stats["exchange_bytes"] > 0
    assert stats["worker_peak_rss_mb"] > 0.0


@pytest.mark.skipif(not cnative.available(), reason="C kernels not built")
def test_banded_training_fit_bitwise_reference_kernels(dataset, split):
    """The numpy-kernel ablation holds the same contract."""
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    cnative.set_c_kernels(False)
    reference = _fit_fingerprint(dataset, split, pairs, targets,
                                 shard_train_on=False)
    assert _fit_fingerprint(dataset, split, pairs, targets,
                            shard_train_on=True) == reference


def test_banded_training_fit_bitwise_pool_off(dataset, split):
    """The buffer pool is value-transparent under banded training too."""
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    reference = _fit_fingerprint(dataset, split, pairs, targets,
                                 shard_train_on=False)
    pool.set_buffer_pool(False)
    assert _fit_fingerprint(dataset, split, pairs, targets,
                            shard_train_on=True) == reference


def test_single_step_all_param_grads_bitwise(dataset, split):
    """One step, gradient by gradient -- localises any backward drift."""
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)

    def one_step(banded):
        init.seed(0)
        model = O2SiteRec(dataset, split=split)
        model.train()
        prev_tiles = shard.set_shard_tiles(3)
        prev_train = shard.set_shard_train(banded)
        opt = Adam(model.parameters(), lr=3e-3, weight_decay=1e-5)
        try:
            opt.zero_grad()
            loss, _, _ = model.loss(pairs, targets)
            loss.backward(free_graph=True)
        finally:
            shard.set_shard_tiles(prev_tiles)
            shard.set_shard_train(prev_train)
        grads = [
            None if p.grad is None else p.grad.copy()
            for p in model.parameters()
        ]
        return float(loss.data), grads

    loss_ref, grads_ref = one_step(False)
    loss_band, grads_band = one_step(True)
    assert loss_band == loss_ref
    assert len(grads_band) == len(grads_ref)
    for i, (a, b) in enumerate(zip(grads_ref, grads_band)):
        if a is None:
            assert b is None, f"param {i}: banded grew a gradient"
        else:
            assert b is not None, f"param {i}: banded lost its gradient"
            assert np.array_equal(a, b), f"param {i}: gradient bytes differ"


# ---------------------------------------------------------------------------
# Synthetic multi-block relation: degenerate partitions, forward + backward.
# ---------------------------------------------------------------------------


def _synthetic_relation(seed=0, factored=False):
    """A destination-sorted relation spanning >2 MATMUL_BLOCK blocks, with
    a destination hole so interior bands can be genuinely empty."""
    rng = np.random.default_rng(seed)
    num_targets, num_sources = 60, 17
    dst = np.sort(rng.integers(0, num_targets, 9500))
    dst = dst[(dst < 20) | (dst >= 30)]  # no edges into targets [20, 30)
    num_edges = len(dst)
    src = rng.integers(0, num_sources, num_edges).astype(np.int64)
    init.seed(seed + 1)
    agg = MultiHeadSegmentAttention(
        query_dim=8, source_dim=8, edge_dim=4, num_heads=2, head_dim=4
    )
    target = Tensor(rng.normal(size=(num_targets, 8)), requires_grad=True)
    source = Tensor(rng.normal(size=(num_sources, 8)), requires_grad=True)
    if factored:
        static = Tensor(rng.normal(size=(num_edges, 2)))
        values = Tensor(rng.normal(size=(12, 2)), requires_grad=True)
        index = rng.integers(0, 12, num_edges).astype(np.int64)
        attr = FactoredEdgeAttr(static, [(values, index)])
    else:
        attr = Tensor(rng.normal(size=(num_edges, 4)))
    return agg, target, source, attr, dst, src


def _run_reference(agg, target, source, attr, dst, src):
    for p in agg.parameters():
        p.grad = None
    target.grad = source.grad = None
    out = agg(target, source, src, dst, attr)
    out.sum().backward(free_graph=True)
    return out.data.copy(), [
        None if p.grad is None else p.grad.copy() for p in agg.parameters()
    ], target.grad.copy(), source.grad.copy()


def _run_banded(agg, target, source, attr, dst, src, cuts):
    for p in agg.parameters():
        p.grad = None
    target.grad = source.grad = None
    bands = shard_train._band_table(dst, np.asarray(cuts, dtype=np.int64))
    prelude = shard_train._build_prelude(agg, target, source, attr)
    spec = {"dst": dst, "src": src, "prelude": prelude}
    value = shard_train._serial_values(spec, bands, agg)
    out = shard_train._banded_attention(
        agg, target, source, attr, dst, src, bands, None, "syn", prelude, value
    )
    out.sum().backward(free_graph=True)
    return out.data.copy(), [
        None if p.grad is None else p.grad.copy() for p in agg.parameters()
    ], target.grad.copy(), source.grad.copy()


@pytest.mark.parametrize("factored", [False, True])
@pytest.mark.parametrize(
    "cuts_name", ["one_band", "empty_interior", "per_target"]
)
def test_synthetic_multiblock_degenerate_partitions(cuts_name, factored):
    agg, target, source, attr, dst, src = _synthetic_relation(
        factored=factored
    )
    num_targets = target.shape[0]
    cuts = {
        # 1 tile: the banded machinery over a single full-range band.
        "one_band": [0, num_targets],
        # Interior bands with zero edges (the [20, 30) destination hole),
        # including one fully inside the hole.
        "empty_interior": [0, 12, 20, 24, 30, 47, num_targets],
        # tiles >= regions: one band per destination row (single-row halos).
        "per_target": list(range(num_targets + 1)),
    }[cuts_name]
    ref_val, ref_grads, ref_gt, ref_gs = _run_reference(
        agg, target, source, attr, dst, src
    )
    band_val, band_grads, band_gt, band_gs = _run_banded(
        agg, target, source, attr, dst, src, cuts
    )
    assert band_val.tobytes() == ref_val.tobytes()
    assert np.array_equal(band_gt, ref_gt)
    assert np.array_equal(band_gs, ref_gs)
    for i, (a, b) in enumerate(zip(ref_grads, band_grads)):
        if a is None:
            assert b is None
        else:
            assert np.array_equal(a, b), f"agg param {i} gradient differs"


@pytest.mark.skipif(not cnative.available(), reason="C kernels not built")
def test_synthetic_multiblock_reference_kernels():
    cnative.set_c_kernels(False)
    agg, target, source, attr, dst, src = _synthetic_relation()
    ref = _run_reference(agg, target, source, attr, dst, src)
    band = _run_banded(
        agg, target, source, attr, dst, src, [0, 12, 20, 24, 30, 47, 60]
    )
    assert band[0].tobytes() == ref[0].tobytes()
    assert np.array_equal(band[2], ref[2])
    assert np.array_equal(band[3], ref[3])
    for a, b in zip(ref[1], band[1]):
        assert (a is None and b is None) or np.array_equal(a, b)


# ---------------------------------------------------------------------------
# Gates and reasons.
# ---------------------------------------------------------------------------


def test_train_gate_declines_without_recommender():
    # Baseline models carry no recommender attribute; the Trainer guard
    # passes None and the gate must decline instead of raising.
    assert shard.shard_train_tiles_for(None) == 0
    assert "no recommender" in shard.shard_train_gate_reason()


def test_train_gate_reasons(dataset):
    model = O2SiteRec(dataset)
    rec = model.recommender
    shard.set_shard_tiles(3)

    model.eval()
    assert shard.shard_train_tiles_for(rec) == 0
    assert "evaluation mode" in shard.shard_train_gate_reason()

    model.train()
    shard.set_shard_train(False)
    assert shard.shard_train_tiles_for(rec) == 0
    assert "disabled" in shard.shard_train_gate_reason()

    shard.set_shard_train(None)
    set_batch_periods(False)
    assert shard.shard_train_tiles_for(rec) == 0
    assert "period batching off" in shard.shard_train_gate_reason()

    set_batch_periods(True)
    tiles = shard.shard_train_tiles_for(rec)
    rows = rec.grid_shape[0]
    assert tiles == min(3, rows) and tiles > 1
    assert "engaged" in shard.shard_train_gate_reason()

    # Auto threshold: the tiny grid sits far below O2_SHARD_MIN_REGIONS.
    shard.set_shard_tiles(None)
    assert shard.shard_train_tiles_for(rec) == 0
    assert "O2_SHARD_MIN_REGIONS" in shard.shard_train_gate_reason()

    # Eval-side reason is recorded independently.
    model.eval()
    shard.set_shard_tiles(3)
    assert shard.shard_tiles_for(rec) > 1
    assert "engaged" in shard.shard_gate_reason()


def test_use_shard_train_context(dataset):
    model = O2SiteRec(dataset)
    model.train()
    shard.set_shard_tiles(3)
    with shard.use_shard_train(False):
        assert shard.shard_train_tiles_for(model.recommender) == 0
    assert shard.shard_train_tiles_for(model.recommender) > 1
    with shard.use_shard_train(None):  # None = no-op passthrough
        assert shard.shard_train_tiles_for(model.recommender) > 1


# ---------------------------------------------------------------------------
# Compiled-step interplay: poison, count, guard flip.  Never a silent
# double-path.
# ---------------------------------------------------------------------------


def _compiled_step(model, opt, guard_fn=None):
    return _plan.CompiledStep(
        loss_fn=lambda p, t: model.loss(p, t)[0],
        parameters=model.parameters(),
        optimizer=opt,
        clip_fn=lambda: clip_grad_norm(model.parameters(), 5.0),
        guard_fn=guard_fn,
    )


def test_compiled_step_poisons_banded_capture(dataset, split):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    shard.set_shard_tiles(3)
    opt = Adam(model.parameters(), lr=3e-3, weight_decay=1e-5)
    cs = _compiled_step(model, opt)
    _plan.reset_stats()
    try:
        loss = cs.step(pairs, targets)
        # The capture was poisoned but the step ran (eagerly, once): a real
        # loss comes back and no plan is cached.
        assert loss is not None
        stats = cs.stats()
        assert stats["plans"] == 0
        assert stats["failed_signatures"] == 1
        assert stats["shard_fallbacks"] == 1
        # Subsequent steps skip capture for this signature entirely.
        assert cs.step(pairs, targets) is None
        assert cs.stats()["shard_fallbacks"] == 1
    finally:
        cs.close()


def test_compiled_step_guard_flip_recaptures(dataset, split):
    """Flipping the training gate mid-fit must evict the dense plan."""
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    shard.set_shard_tiles(3)
    shard.set_shard_train(False)
    opt = Adam(model.parameters(), lr=3e-3, weight_decay=1e-5)
    cs = _compiled_step(
        model,
        opt,
        guard_fn=lambda: (
            model.training,
            bool(shard.shard_train_tiles_for(model.recommender)),
        ),
    )
    _plan.reset_stats()
    try:
        assert cs.step(pairs, targets) is not None  # dense: captures a plan
        assert cs.stats()["plans"] == 1
        shard.set_shard_train(True)  # gate flips on under the same plan
        assert cs.step(pairs, targets) is not None  # evict + poisoned eager
        stats = cs.stats()
        assert stats["plans"] == 0
        assert stats["guard_evictions"] == 1
        assert stats["shard_fallbacks"] == 1
    finally:
        cs.close()


# ---------------------------------------------------------------------------
# Memprof surface.
# ---------------------------------------------------------------------------


def test_memprof_reports_shard_train_counters(dataset, split):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    shard_train.reset_shard_train_stats()
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    shard.set_shard_tiles(3)
    loss, _, _ = model.loss(pairs, targets)
    loss.backward(free_graph=True)
    snap = memprof.report()
    st = snap["shard_train"]
    assert st["steps"] >= 1 and st["bands"] > 0 and st["nodes"] > 0
    assert st["halo_rows"] >= 0 and st["halo_bytes"] >= 0
    assert "engaged" in snap["shard_train_gate_reason"]
    text = memprof.format_report(snap)
    assert "shard_train:" in text
    assert "shard gates:" in text


def test_memprof_plan_line_shows_shard_fallbacks(dataset, split):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    shard.set_shard_tiles(3)
    opt = Adam(model.parameters(), lr=3e-3, weight_decay=1e-5)
    cs = _compiled_step(model, opt)
    _plan.reset_stats()
    try:
        cs.step(pairs, targets)
    finally:
        cs.close()
    text = memprof.format_report(memprof.report())
    assert "shard_fallbacks=1" in text


# ---------------------------------------------------------------------------
# Substrate pieces that landed with the tentpole.
# ---------------------------------------------------------------------------


def test_segment_plan_sum_out_variant():
    rng = np.random.default_rng(1)
    ids = np.sort(rng.integers(0, 9, 200)).astype(np.int64)
    values = rng.normal(size=(200, 4))
    plan = SegmentPlan(ids, 12)
    reference = plan.sum(values).copy()
    out = np.full((12, 4), 7.0)  # must be overwritten, not accumulated
    result = plan.sum(values, out=out)
    assert result is out
    assert np.array_equal(result, reference)
    with pytest.raises(ValueError):
        plan.sum(values, out=np.zeros((11, 4)))


def test_band_table_caches_ids_identity():
    dst = np.sort(np.random.default_rng(2).integers(0, 40, 500)).astype(
        np.int64
    )
    cuts = np.array([0, 10, 25, 40], dtype=np.int64)
    t1 = shard_train._band_table(dst, cuts)
    t2 = shard_train._band_table(dst, cuts)
    assert all(a[4] is b[4] for a, b in zip(t1, t2))  # stable ids arrays
    # Stable ids arrays keep the SegmentPlan identity cache hot.
    lo, hi, e0, e1, ids = t1[1]
    assert get_plan(ids, hi - lo) is get_plan(ids, hi - lo)
    # Different cuts over the same dst rebuild rather than alias.
    t3 = shard_train._band_table(dst, np.array([0, 20, 40], dtype=np.int64))
    assert len(t3) == 2


def _pool_pid(_):
    import os

    return os.getpid()


def test_persistent_process_map_reuses_pool():
    if parallel.in_process_worker():  # pragma: no cover - defensive
        pytest.skip("cannot fork from inside a worker")
    try:
        first = set(parallel.process_map(
            _pool_pid, range(4), procs=2, persistent=True
        ))
        second = set(parallel.process_map(
            _pool_pid, range(4), procs=2, persistent=True
        ))
        # Same worker pool across calls: no new processes appear, so the
        # union stays within the pool size (which chunk lands on which
        # worker is scheduling-dependent and not asserted).
        assert len(first | second) <= 2
    finally:
        parallel.shutdown_process_pool()
    third = set(parallel.process_map(
        _pool_pid, range(4), procs=2, persistent=True
    ))
    assert third  # pool transparently rebuilt after shutdown
    parallel.shutdown_process_pool()
