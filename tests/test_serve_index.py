"""Retrieve-then-rank serving: the vector index and its service wiring.

Pins the subsystem's contracts:

* flat (exhaustive) retrieval reproduces the full-scan ``service.query``
  float for float, duplicate-score ties included (``repro.topk`` stable
  ascending-index tie-break);
* IVF probing by per-partition max score guarantees recall@k = 1.0 for
  ``nprobe >= k`` and stays above the bench floor at the defaults;
* index segments round-trip through both snapshot formats, mmap
  zero-copy from the arena, and survive hot swap -- in-process reloads
  under concurrent queries and fleet-wide manifest cutover;
* the exactness toggles (``use_index=False``, ``O2_SERVE_INDEX=0``,
  explicit candidate lists) fall back to the full scan bit for bit.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    ModelSnapshot,
    RecommendationService,
    VectorIndex,
    arena_segments,
    open_arena,
)
from repro.serve.__main__ import main as serve_main
from repro.serve.index import MIN_RERANK
from repro.serve.service import _CandidateResolver
from repro.serve.workers import SHARED_COUNTERS, SHARED_STAGES, WorkerPool
from repro.topk import top_k_indices

NUM_TYPES = 6
EMBED_DIM = 10
PERIODS = 3


def make_snapshot(
    num_regions=240, seed=0, duplicate_pairs=0
) -> ModelSnapshot:
    """A synthetic snapshot with hub-clustered embeddings.

    ``duplicate_pairs`` copies the embedding rows of the first regions
    onto later ones (every period), producing regions with *identical*
    exact scores for every type -- the duplicate-score tie case.
    """
    rng = np.random.default_rng(seed)
    hubs = rng.normal(size=(max(num_regions // 30, 4), EMBED_DIM))
    base = hubs[rng.integers(len(hubs), size=num_regions)]
    base = base + 0.2 * rng.normal(size=base.shape)
    for i in range(duplicate_pairs):
        base[num_regions - 1 - i] = base[i]
    h = np.stack(
        [base + 0.05 * rng.normal(size=base.shape) for _ in range(PERIODS)],
        axis=0,
    )
    for i in range(duplicate_pairs):  # ties must hold in every period
        h[:, num_regions - 1 - i] = h[:, i]
    dim = 3 * EMBED_DIM
    predictor = [
        (rng.normal(scale=0.4, size=(dim, 8)), rng.normal(scale=0.1, size=8)),
        (rng.normal(scale=0.4, size=(8, 1)), rng.normal(scale=0.1, size=1)),
    ]
    return ModelSnapshot(
        h=h,
        q=rng.normal(size=(PERIODS, NUM_TYPES, EMBED_DIM)),
        pair_commercial=np.zeros((num_regions, NUM_TYPES, 2)),
        store_regions=np.arange(num_regions, dtype=np.int64),
        type_names=[f"type_{t}" for t in range(NUM_TYPES)],
        target_scale=50.0,
        product_channel=True,
        commercial_in_predictor=False,
        time_attention=False,
        time_heads=1,
        time_key_weight=None,
        time_query_weight=None,
        predictor_weights=predictor,
    )


@pytest.fixture(scope="module")
def snapshot():
    return make_snapshot(seed=0)


@pytest.fixture(scope="module")
def indexed_snapshot():
    snap = make_snapshot(seed=0)
    snap.build_index(kind="ivf", retrieve_m=32, seed=0)
    return snap


def query_rows(service, store_type, k, **kwargs):
    return [
        (r.region, r.score) for r in service.query(store_type, k=k, **kwargs)
    ]


SERVICE_KWARGS = dict(cache_entries=0, batch_window_ms=0.0, num_workers=1)


# ----------------------------------------------------------------------
# The index itself
# ----------------------------------------------------------------------
class TestVectorIndex:
    def test_flat_search_is_true_top_m(self, snapshot):
        index = VectorIndex.build(snapshot, kind="flat", retrieve_m=16)
        for store_type in range(snapshot.num_types):
            expected = np.sort(top_k_indices(index.sheet[store_type], 16))
            assert np.array_equal(index.search(store_type), expected)

    def test_sheet_holds_exact_scores(self, indexed_snapshot):
        snap = indexed_snapshot
        regions = snap.candidate_regions()
        for store_type in (0, snap.num_types - 1):
            exact = snap.score_candidates(store_type, regions)
            assert np.array_equal(exact, snap.index.sheet[store_type])

    def test_ivf_full_probe_equals_flat(self, snapshot, indexed_snapshot):
        flat = VectorIndex.build(snapshot, kind="flat", retrieve_m=32)
        ivf = indexed_snapshot.index
        for store_type in range(snapshot.num_types):
            assert np.array_equal(
                ivf.search(store_type, nprobe=ivf.num_partitions),
                flat.search(store_type),
            )

    def test_max_probe_recall_guarantee(self, indexed_snapshot):
        # Probing by per-partition max: nprobe >= k implies every
        # partition holding a true top-k member is probed, so recall is
        # exactly 1.0 -- not approximately.
        index = indexed_snapshot.index
        k = 10
        assert index.num_partitions > k
        for store_type in range(index.num_types):
            assert index.recall_against_full_scan(
                store_type, k, m=32, nprobe=k
            ) == 1.0

    def test_default_operating_point_recall_floor(self, indexed_snapshot):
        index = indexed_snapshot.index
        recalls = [
            index.recall_against_full_scan(t, 10)
            for t in range(index.num_types)
        ]
        assert float(np.mean(recalls)) >= 0.95  # the bench floor

    def test_keep_mask_filters_survivors(self, indexed_snapshot):
        index = indexed_snapshot.index
        keep = np.ones(index.num_candidates, dtype=bool)
        banned = top_k_indices(index.sheet[0], 3)
        keep[banned] = False
        survivors = index.search(0, 16, keep=keep)
        assert not np.isin(banned, survivors).any()
        assert len(survivors) == 16

    def test_duplicate_scores_keep_lowest_indices(self):
        snap = make_snapshot(seed=2, duplicate_pairs=3)
        index = VectorIndex.build(snap, kind="flat", retrieve_m=8)
        n = index.num_candidates
        for store_type in range(snap.num_types):
            row = index.sheet[store_type]
            assert np.array_equal(row[:3], row[n - 3:][::-1])  # real ties
            survivors = index.search(store_type, 8)
            # Same stable semantics as the full argsort the scan uses.
            expected = np.sort(np.argsort(-row, kind="stable")[:8])
            assert np.array_equal(survivors, expected)

    def test_validation(self, indexed_snapshot):
        index = indexed_snapshot.index
        with pytest.raises(KeyError):
            index.search(index.num_types)
        with pytest.raises(ValueError):
            index.search(0, 0)
        with pytest.raises(ValueError):
            VectorIndex.build(indexed_snapshot, kind="lsh")

    def test_describe_and_nbytes(self, indexed_snapshot):
        info = indexed_snapshot.index.describe()
        assert info["kind"] == "ivf"
        assert info["candidates"] == indexed_snapshot.num_store_nodes
        assert info["bytes"] == indexed_snapshot.index.nbytes() > 0


# ----------------------------------------------------------------------
# Serialisation: npz, arena, zero-copy
# ----------------------------------------------------------------------
class TestIndexSerialisation:
    def test_npz_round_trip(self, indexed_snapshot, tmp_path):
        path = indexed_snapshot.save(tmp_path / "snap.npz")
        loaded = ModelSnapshot.load(path)
        assert loaded.index is not None
        assert loaded.index.kind == "ivf"
        assert loaded.index.retrieve_m == indexed_snapshot.index.retrieve_m
        assert loaded.index.nprobe == indexed_snapshot.index.nprobe
        for name, array in indexed_snapshot.index.array_payload().items():
            assert np.array_equal(
                array, loaded.index.array_payload()[name]
            ), name

    def test_arena_round_trip_zero_copy(self, indexed_snapshot, tmp_path):
        path = indexed_snapshot.save(tmp_path / "snap.arena", format="arena")
        segments = arena_segments(path)
        index_segments = {
            n for n in segments if n.startswith("index__")
        }
        assert index_segments == set(
            indexed_snapshot.index.array_payload()
        )
        loaded = open_arena(path, verify=True)
        # Views into the shared mmap, not copies.
        assert not loaded.index.sheet.flags["OWNDATA"]
        assert not loaded.index.list_members.flags["OWNDATA"]
        for store_type in range(loaded.num_types):
            assert np.array_equal(
                loaded.index.search(store_type),
                indexed_snapshot.index.search(store_type),
            )

    def test_flat_index_arena_round_trip(self, snapshot, tmp_path):
        # Flat indexes serialise zero-length partition arrays; the arena
        # must keep their (empty) segments addressable.
        snap = make_snapshot(seed=0)
        snap.build_index(kind="flat", retrieve_m=16)
        path = snap.save(tmp_path / "flat.arena", format="arena")
        loaded = ModelSnapshot.load(path)
        assert loaded.index.kind == "flat"
        assert loaded.index.num_partitions == 0
        assert np.array_equal(loaded.index.search(1), snap.index.search(1))

    def test_plain_snapshot_has_no_index(self, snapshot, tmp_path):
        for fmt, name in (("npz", "p.npz"), ("arena", "p.arena")):
            path = snapshot.save(tmp_path / name, format=fmt)
            assert ModelSnapshot.load(path).index is None

    def test_index_not_part_of_fingerprint(self, tmp_path):
        plain = make_snapshot(seed=0)
        indexed = make_snapshot(seed=0)
        indexed.build_index(kind="ivf", retrieve_m=32, seed=0)
        # Derived state: indexed and plain copies of one model share an
        # id, so a build-index deploy is not a model change.
        assert plain.snapshot_id == indexed.snapshot_id
        path = indexed.save(tmp_path / "snap.arena", format="arena")
        assert ModelSnapshot.load(path).snapshot_id == plain.snapshot_id

    def test_build_is_deterministic(self):
        a = make_snapshot(seed=0)
        b = make_snapshot(seed=0)
        ia = a.build_index(kind="ivf", retrieve_m=32, seed=5)
        ib = b.build_index(kind="ivf", retrieve_m=32, seed=5)
        for name, array in ia.array_payload().items():
            assert np.array_equal(array, ib.array_payload()[name]), name


# ----------------------------------------------------------------------
# Service wiring: retrieval path, toggles, counters
# ----------------------------------------------------------------------
class TestServiceRetrieval:
    def test_flat_mode_identical_to_full_scan(self):
        plain = make_snapshot(seed=1, duplicate_pairs=4)
        flat = make_snapshot(seed=1, duplicate_pairs=4)
        flat.build_index(kind="flat", retrieve_m=16)
        with RecommendationService(
            plain, **SERVICE_KWARGS
        ) as exact, RecommendationService(flat, **SERVICE_KWARGS) as indexed:
            for store_type in range(plain.num_types):
                for k in (1, 3, 10):
                    assert query_rows(indexed, store_type, k) == query_rows(
                        exact, store_type, k
                    )
            assert (
                indexed.stats()["counters"]["retrievals"]
                == plain.num_types * 3
            )

    def test_exclude_regions_identical_to_full_scan(self, indexed_snapshot):
        plain = make_snapshot(seed=0)
        exclude = [0, 5, 7, 9999]  # 9999 is not a candidate: ignored
        with RecommendationService(
            plain, **SERVICE_KWARGS
        ) as exact, RecommendationService(
            indexed_snapshot, nprobe=indexed_snapshot.index.num_partitions,
            **SERVICE_KWARGS,
        ) as indexed:
            a = query_rows(exact, 2, 8, exclude_regions=exclude)
            b = query_rows(indexed, 2, 8, exclude_regions=exclude)
            assert a == b
            assert not {r for r, _ in a} & set(exclude)

    def test_explicit_candidates_fall_back_exactly(self, indexed_snapshot):
        plain = make_snapshot(seed=0)
        candidates = list(plain.candidate_regions()[3:40])
        with RecommendationService(
            plain, **SERVICE_KWARGS
        ) as exact, RecommendationService(
            indexed_snapshot, **SERVICE_KWARGS
        ) as indexed:
            assert query_rows(
                indexed, 1, 5, candidate_regions=candidates
            ) == query_rows(exact, 1, 5, candidate_regions=candidates)
            counters = indexed.stats()["counters"]
            assert counters["retrieval_fallbacks"] == 1
            assert counters.get("retrievals", 0) == 0

    def test_use_index_false_matches_plain_bitwise(self, indexed_snapshot):
        plain = make_snapshot(seed=0)
        with RecommendationService(
            plain, **SERVICE_KWARGS
        ) as exact, RecommendationService(
            indexed_snapshot, use_index=False, **SERVICE_KWARGS
        ) as disabled:
            for store_type in range(plain.num_types):
                assert query_rows(disabled, store_type, 5) == query_rows(
                    exact, store_type, 5
                )
            assert disabled.stats()["counters"].get("retrievals", 0) == 0
            assert disabled.stats()["index"]["active"] is False

    def test_env_toggle_disables_index(self, indexed_snapshot, monkeypatch):
        monkeypatch.setenv("O2_SERVE_INDEX", "0")
        with RecommendationService(
            indexed_snapshot, **SERVICE_KWARGS
        ) as service:
            assert service.use_index is False
            service.query(0, k=3)
            assert service.stats()["counters"].get("retrievals", 0) == 0
        monkeypatch.setenv("O2_SERVE_INDEX", "on")
        with RecommendationService(
            indexed_snapshot, **SERVICE_KWARGS
        ) as service:
            assert service.use_index is True
            service.query(0, k=3)
            assert service.stats()["counters"]["retrievals"] == 1

    def test_min_rerank_clamp(self, indexed_snapshot):
        # k=1 must still re-rank a batch of >= MIN_RERANK survivors so
        # subset scoring stays in the same BLAS regime as the full scan.
        plain = make_snapshot(seed=0)
        with RecommendationService(
            plain, **SERVICE_KWARGS
        ) as exact, RecommendationService(
            indexed_snapshot, retrieve_m=1, **SERVICE_KWARGS
        ) as indexed:
            assert MIN_RERANK >= 8
            for store_type in range(plain.num_types):
                assert query_rows(indexed, store_type, 1) == query_rows(
                    exact, store_type, 1
                )

    def test_retrieve_stage_and_stats(self, indexed_snapshot):
        with RecommendationService(
            indexed_snapshot, **SERVICE_KWARGS
        ) as service:
            service.query(0, k=5)
            stats = service.stats()
            assert stats["counters"]["retrievals"] == 1
            assert stats["latency"]["retrieve"]["count"] == 1
            assert stats["index"]["present"] is True
            assert stats["index"]["active"] is True
            assert stats["index"]["kind"] == "ivf"
        assert "retrievals" in SHARED_COUNTERS
        assert "retrieval_fallbacks" in SHARED_COUNTERS
        assert "retrieve" in SHARED_STAGES

    def test_all_excluded_raises(self, indexed_snapshot):
        everything = list(indexed_snapshot.candidate_regions())
        with RecommendationService(
            indexed_snapshot, **SERVICE_KWARGS
        ) as service:
            with pytest.raises(ValueError):
                service.query(0, k=3, exclude_regions=everything)


class TestCandidateResolver:
    def test_matches_naive_filter(self, snapshot):
        resolver = _CandidateResolver(snapshot)
        base = snapshot.candidate_regions()
        rng = np.random.default_rng(0)
        for size in (0, 1, 17, len(base)):
            exclude = list(
                rng.choice(base, size=size, replace=False)
            ) + [99999, -3]
            dropped = set(int(r) for r in exclude)
            naive = np.asarray(
                [r for r in base if int(r) not in dropped], dtype=np.int64
            )
            mask = resolver.keep_mask(exclude)
            assert np.array_equal(resolver.base[mask], naive)

    def test_none_means_keep_all(self, snapshot):
        resolver = _CandidateResolver(snapshot)
        assert resolver.keep_mask(None) is None
        assert resolver.keep_mask([]).all()

    def test_sparse_id_space_falls_back_to_isin(self):
        snap = make_snapshot(num_regions=64, seed=3)
        snap.store_regions = snap.store_regions * 10_000  # sparse ids
        snap._store_index = {
            int(r): i for i, r in enumerate(snap.store_regions)
        }
        resolver = _CandidateResolver(snap)
        assert resolver._lookup is None
        mask = resolver.keep_mask([0, 10_000])
        assert mask.sum() == 62


# ----------------------------------------------------------------------
# Hot swap: in-process and fleet-wide, retrieval stays consistent
# ----------------------------------------------------------------------
def _expected_rows(snapshot, store_type, k):
    with RecommendationService(snapshot, **SERVICE_KWARGS) as service:
        return query_rows(service, store_type, k)


class TestHotSwap:
    def test_reload_under_concurrent_retrieval(self):
        old = make_snapshot(seed=1)
        old.build_index(kind="ivf", retrieve_m=32, seed=0)
        new = make_snapshot(seed=2)
        new.build_index(kind="ivf", retrieve_m=32, seed=0)
        expect_old = _expected_rows(old, 1, 6)
        expect_new = _expected_rows(new, 1, 6)
        assert expect_old != expect_new

        torn = []
        observed = []
        stop = threading.Event()
        with RecommendationService(old, **SERVICE_KWARGS) as service:

            def hammer():
                while not stop.is_set():
                    rows = query_rows(service, 1, 6)
                    observed.append(tuple(rows))
                    # Atomicity pin: the retrieval index, resolver and
                    # scorer must all come from ONE generation.
                    if rows != expect_old and rows != expect_new:
                        torn.append(rows)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.15)
                service.reload(new)
                time.sleep(0.15)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=20)
            assert query_rows(service, 1, 6) == expect_new
            # >=: a query that straddled the swap retried its retrieval.
            assert service.stats()["counters"]["retrievals"] >= len(observed) + 1
        assert not torn, f"torn reads: {torn[:3]}"
        assert tuple(expect_old) in observed

    def test_manifest_cutover_with_indexed_arenas(self, tmp_path):
        old = make_snapshot(seed=1)
        old.build_index(kind="ivf", retrieve_m=32, seed=0)
        new = make_snapshot(seed=2)
        new.build_index(kind="ivf", retrieve_m=32, seed=0)
        old_path = old.save(tmp_path / "old.arena", format="arena")
        new_path = new.save(tmp_path / "new.arena", format="arena")
        expect_new = [s for _, s in _expected_rows(new, 1, 4)]

        def get(port, path):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200, body
                return json.loads(body)
            finally:
                conn.close()

        manifest = tmp_path / "deploy.json"
        with WorkerPool(
            old_path, procs=2, manifest_path=manifest, poll_interval_s=0.05
        ) as pool:
            for _ in range(4):
                assert len(get(pool.port, "/recommend?type=1&k=4")) == 4
            pool.reload(new_path)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if pool.shared.counter("reloads") >= 2:
                    break
                time.sleep(0.05)
            # Indexed arenas cut over like plain ones, and the fleet
            # keeps retrieving (counter mirrors through shared memory).
            scores = [
                r["score"] for r in get(pool.port, "/recommend?type=1&k=4")
            ]
            assert scores == expect_new
            stats = pool.stats()
            assert stats["counters"]["reload_errors"] == 0
            assert stats["counters"]["retrievals"] >= 5
            assert stats["latency"]["retrieve"]["count"] >= 5


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_build_index_round_trip(self, tmp_path, capsys):
        snap = make_snapshot(seed=0)
        npz = snap.save(tmp_path / "snap.npz")
        assert (
            serve_main(
                ["build-index", str(npz), "--retrieve-m", "24",
                 "--nprobe", "4"]
            )
            == 0
        )
        assert "ivf index" in capsys.readouterr().out
        loaded = ModelSnapshot.load(npz)
        assert loaded.index is not None
        assert loaded.index.retrieve_m == 24
        assert loaded.index.nprobe == 4

    def test_build_index_to_arena_dest(self, tmp_path, capsys):
        snap = make_snapshot(seed=0)
        npz = snap.save(tmp_path / "snap.npz")
        dest = tmp_path / "snap.arena"
        assert (
            serve_main(["build-index", str(npz), str(dest), "--kind", "flat"])
            == 0
        )
        loaded = ModelSnapshot.load(dest)
        assert loaded.index.kind == "flat"
        assert ModelSnapshot.load(npz).index is None  # source untouched

    def test_serve_once_index_toggle(self, tmp_path, capsys):
        snap = make_snapshot(seed=0)
        snap.build_index(kind="flat", retrieve_m=16)
        path = snap.save(tmp_path / "snap.arena", format="arena")
        assert (
            serve_main(
                ["--snapshot", str(path), "--index", "on",
                 "--once", "QUERY 1 K=3"]
            )
            == 0
        )
        with_index = capsys.readouterr().out
        assert (
            serve_main(
                ["--snapshot", str(path), "--index", "off",
                 "--once", "QUERY 1 K=3"]
            )
            == 0
        )
        assert capsys.readouterr().out == with_index  # bit-for-bit

    def test_index_on_requires_index(self, tmp_path):
        snap = make_snapshot(seed=0)
        path = snap.save(tmp_path / "plain.npz")
        with pytest.raises(SystemExit):
            serve_main(
                ["--snapshot", str(path), "--index", "on",
                 "--once", "QUERY 1 K=3"]
            )
