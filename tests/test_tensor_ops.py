"""Forward-value and shape behaviour of the tensor ops."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    as_tensor,
    concat,
    gather_rows,
    ones,
    segment_counts,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    unbroadcast,
    where,
    zeros,
)


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        t = as_tensor(2.5)
        assert t.item() == 2.5

    def test_requires_grad_propagates_from_parents(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12
        assert t.ndim == 2

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad

    def test_zeros_ones_helpers(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(2).data.sum() == 2.0


class TestArithmetic:
    def test_add_broadcasts(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones(3))
        assert np.allclose((a + b).data, 2.0)

    def test_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0])
        assert (1 + a).item() == 3.0
        assert (5 - a).item() == 3.0
        assert (3 * a).item() == 6.0
        assert (8 / a).item() == 4.0

    def test_neg(self):
        assert (-Tensor([1.5])).item() == -1.5

    def test_pow_scalar_only(self):
        t = Tensor([2.0])
        assert (t**3).item() == 8.0
        with pytest.raises(TypeError):
            t ** np.array([1.0, 2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_vector_cases(self):
        v = Tensor(np.array([1.0, 2.0]))
        m = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert np.allclose((v @ m).data, v.data)
        assert np.allclose((m @ v).data, v.data)
        assert (v @ v).item() == 5.0


class TestElementwise:
    def test_exp_log_roundtrip(self):
        t = Tensor([0.5, 1.0, 2.0])
        assert np.allclose(t.exp().log().data, t.data)

    def test_relu_zeroes_negatives(self):
        t = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(t.relu().data, [0.0, 0.0, 2.0])

    def test_leaky_relu_slope(self):
        t = Tensor([-10.0, 10.0])
        assert np.allclose(t.leaky_relu(0.1).data, [-1.0, 10.0])

    def test_sigmoid_range_and_saturation(self):
        t = Tensor([-1000.0, 0.0, 1000.0])
        out = t.sigmoid().data
        assert np.all((out >= 0) & (out <= 1))
        assert out[1] == 0.5

    def test_tanh(self):
        assert np.allclose(Tensor([0.0]).tanh().data, 0.0)

    def test_abs_and_sqrt(self):
        assert np.allclose(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])
        assert np.allclose(Tensor([4.0]).sqrt().data, 2.0)


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum().item() == 6.0
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.arange(4.0))
        assert t.mean().item() == 1.5
        assert t.reshape(2, 2).mean(axis=0).shape == (2,)

    def test_max(self):
        t = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert t.max().item() == 5.0
        assert np.allclose(t.max(axis=1).data, [5.0, 3.0])


class TestShapes:
    def test_reshape_and_tuple_form(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_and_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.T.shape == (4, 3, 2)
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_expand_squeeze(self):
        t = Tensor(np.zeros((3,)))
        e = t.expand_dims(0)
        assert e.shape == (1, 3)
        assert e.squeeze(0).shape == (3,)

    def test_getitem_row(self):
        t = Tensor(np.arange(9.0).reshape(3, 3))
        assert np.allclose(t[1].data, [3.0, 4.0, 5.0])


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_added_leading_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).sum() == 24.0

    def test_sums_stretched_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        assert out.data[:, :2].sum() == 4.0

    def test_stack_new_axis(self):
        a = Tensor(np.ones(3))
        out = stack([a, a, a], axis=0)
        assert out.shape == (3, 3)


class TestSegmentOps:
    def test_gather_rows(self):
        t = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather_rows(t, np.array([2, 0, 2]))
        assert np.allclose(out.data, [[4, 5], [0, 1], [4, 5]])

    def test_segment_sum_values(self):
        data = Tensor(np.ones((4, 2)))
        out = segment_sum(data, np.array([0, 0, 1, 3]), 4)
        assert np.allclose(out.data[:, 0], [2, 1, 0, 1])

    def test_segment_sum_length_mismatch(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_segment_mean_empty_segment_is_zero(self):
        out = segment_mean(Tensor(np.ones((2, 1)) * 4), np.array([0, 0]), 3)
        assert np.allclose(out.data[:, 0], [4.0, 0.0, 0.0])

    def test_segment_counts(self):
        assert np.allclose(segment_counts(np.array([0, 2, 2]), 4), [1, 0, 2, 0])

    def test_segment_softmax_sums_to_one_per_segment(self):
        ids = np.array([0, 0, 1, 1, 1])
        out = segment_softmax(Tensor(np.random.default_rng(0).normal(size=5)), ids, 2)
        sums = np.zeros(2)
        np.add.at(sums, ids, out.data)
        assert np.allclose(sums, 1.0)

    def test_segment_softmax_multihead(self):
        ids = np.array([0, 0, 1])
        scores = Tensor(np.zeros((3, 4)))
        out = segment_softmax(scores, ids, 2)
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], 0.5)
        assert np.allclose(out.data[2], 1.0)

    def test_segment_softmax_extreme_scores_stable(self):
        ids = np.array([0, 0])
        out = segment_softmax(Tensor(np.array([1000.0, -1000.0])), ids, 1)
        assert np.allclose(out.data, [1.0, 0.0])


class TestSoftmaxWhere:
    def test_softmax_rows_sum_to_one(self):
        out = softmax(Tensor(np.random.default_rng(1).normal(size=(4, 5))))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_axis0(self):
        out = softmax(Tensor(np.zeros((2, 3))), axis=0)
        assert np.allclose(out.data, 0.5)

    def test_where_select(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])
