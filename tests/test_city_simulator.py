"""The synthetic city: land use, stores, fleet, orders and presets."""

import numpy as np
import pytest

from repro.city import (
    ACTIVE_FRACTION,
    ARCHETYPES,
    POI_TYPES,
    CityConfig,
    assign_archetypes,
    build_fleet,
    default_store_types,
    place_stores,
    simulate,
    simulation_dataset,
    synthesize_land_use,
    tiny_dataset,
)
from repro.data.periods import NUM_PERIODS, TimePeriod
from repro.geo import RegionGrid


class TestConfig:
    def test_defaults_valid(self):
        cfg = CityConfig()
        assert cfg.num_store_types == 14
        assert "light_meal" in cfg.type_names

    def test_type_index(self):
        cfg = CityConfig()
        assert cfg.type_names[cfg.type_index("juice")] == "juice"
        with pytest.raises(KeyError):
            cfg.type_index("nonexistent")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 2},
            {"num_days": 0},
            {"store_types": []},
            {"sparsity": 0.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            CityConfig(**kwargs)

    def test_store_type_profiles_sized(self):
        for t in default_store_types():
            assert len(t.period_popularity) == NUM_PERIODS
            assert len(t.archetype_affinity) == len(ARCHETYPES)


class TestLandUse:
    @pytest.fixture(scope="class")
    def land(self):
        cfg = CityConfig(rows=10, cols=10, seed=1)
        return synthesize_land_use(cfg, np.random.default_rng(1))

    def test_shapes(self, land):
        n = land.num_regions
        assert land.poi_counts.shape == (n, len(POI_TYPES))
        assert land.population.shape == (n, NUM_PERIODS)
        assert land.archetype.shape == (n,)

    def test_archetypes_in_range(self, land):
        assert land.archetype.min() >= 0
        assert land.archetype.max() < len(ARCHETYPES)

    def test_center_denser_than_edge(self, land):
        center = land.grid.center_region()
        corner = 0
        assert land.poi_counts[center].sum() >= land.poi_counts[corner].sum()

    def test_suburbs_on_periphery(self):
        grid = RegionGrid(12, 12)
        arch = assign_archetypes(grid, np.random.default_rng(0))
        suburb_idx = ARCHETYPES.index("suburb")
        dists = np.array([grid.distance_from_center(r) for r in range(grid.num_regions)])
        suburb_mean = dists[arch == suburb_idx].mean()
        other_mean = dists[arch != suburb_idx].mean()
        assert suburb_mean > other_mean

    def test_regions_of_archetype(self, land):
        total = sum(len(land.regions_of_archetype(a)) for a in ARCHETYPES)
        assert total == land.num_regions


class TestStores:
    def test_placement_within_region(self, sim):
        for s in sim.stores[:200]:
            region = sim.land.grid.region_of_point(s.x, s.y)
            assert region == s.record.region

    def test_unique_ids(self, sim):
        ids = [s.record.store_id for s in sim.stores]
        assert len(set(ids)) == len(ids)

    def test_counts_match(self, sim):
        counts = sim.store_type_counts()
        assert counts.sum() == len(sim.stores)

    def test_positive_quality(self, sim):
        assert all(s.quality > 0 for s in sim.stores)


class TestFleet:
    @pytest.fixture(scope="class")
    def fleet(self, sim):
        return sim.fleet

    def test_supply_totals_match_schedule(self, fleet, sim):
        for period in TimePeriod:
            expected = sim.config.num_couriers * ACTIVE_FRACTION[period]
            assert fleet.supply[:, int(period)].sum() == pytest.approx(expected)

    def test_rush_hour_ratio_lower(self, fleet):
        means = fleet.ratio.mean(axis=0)
        assert means[int(TimePeriod.NOON_RUSH)] < means[int(TimePeriod.AFTERNOON)]
        assert means[int(TimePeriod.EVENING_RUSH)] < means[int(TimePeriod.AFTERNOON)]

    def test_congestion_decreases_with_ratio(self, fleet):
        # Pick region/period pairs with different ratios.
        flat = fleet.ratio.ravel()
        low = np.unravel_index(flat.argmin(), fleet.ratio.shape)
        high = np.unravel_index(flat.argmax(), fleet.ratio.shape)
        c_low = fleet.congestion(low[0], TimePeriod(low[1]))
        c_high = fleet.congestion(high[0], TimePeriod(high[1]))
        assert c_low > c_high

    def test_delivery_time_increases_with_distance(self, fleet):
        region = 0
        t1 = fleet.delivery_minutes(region, 1000, TimePeriod.AFTERNOON)
        t2 = fleet.delivery_minutes(region, 4000, TimePeriod.AFTERNOON)
        assert t2 > t1

    def test_scope_clipped(self, fleet, sim):
        scopes = fleet.scope_matrix()
        assert scopes.min() >= sim.config.min_scope_m
        assert scopes.max() <= sim.config.max_scope_m

    def test_rush_scope_smaller(self, fleet):
        scopes = fleet.scope_matrix().mean(axis=0)
        assert scopes[int(TimePeriod.NOON_RUSH)] < scopes[int(TimePeriod.AFTERNOON)]

    def test_sample_courier_returns_known_id(self, fleet, rng):
        courier = fleet.sample_courier(0, rng)
        assert courier.startswith("C")


class TestOrders:
    def test_orders_nonempty(self, sim):
        assert sim.num_orders > 1000

    def test_timestamps_ordered(self, sim):
        for o in sim.orders[:500]:
            assert o.created_minute <= o.accepted_minute <= o.pickup_minute
            assert o.pickup_minute <= o.delivered_minute

    def test_period_consistent_with_creation(self, sim):
        for o in sim.orders[:500]:
            assert o.period == TimePeriod.from_hour(o.hour)

    def test_regions_valid(self, sim):
        n = sim.land.num_regions
        for o in sim.orders[:500]:
            assert 0 <= o.store_region < n
            assert 0 <= o.customer_region < n

    def test_store_region_matches_registry(self, sim):
        by_id = {s.record.store_id: s.record.region for s in sim.stores}
        for o in sim.orders[:500]:
            assert by_id[o.store_id] == o.store_region

    def test_rush_hours_busiest(self, sim):
        counts = np.zeros(NUM_PERIODS)
        for o in sim.orders:
            counts[int(o.period)] += 1
        per_hour = counts / [p.duration_hours for p in TimePeriod]
        assert per_hour[int(TimePeriod.NOON_RUSH)] > per_hour[int(TimePeriod.AFTERNOON)]

    def test_reproducible_given_seed(self):
        a = tiny_dataset(seed=9)
        b = tiny_dataset(seed=9)
        assert a.num_orders == b.num_orders
        assert a.orders[0].order_id == b.orders[0].order_id
        assert a.orders[-1].distance_m == b.orders[-1].distance_m

    def test_different_seeds_differ(self):
        a = tiny_dataset(seed=9)
        b = tiny_dataset(seed=10)
        assert a.num_orders != b.num_orders


class TestPresets:
    def test_summary_mentions_counts(self, sim):
        text = sim.summary()
        assert "orders" in text and "stores" in text

    def test_simulation_dataset_sparser(self, sim):
        noisy = simulation_dataset(scale=0.6)
        # Same-ish area but much lower order volume per region-day.
        density_real = sim.num_orders / (sim.land.num_regions * sim.config.num_days)
        density_sim = noisy.num_orders / (
            noisy.land.num_regions * noisy.config.num_days
        )
        assert density_sim < density_real
