"""Streaming (banded) S-U graph build vs the reference per-store loop.

The streaming build exists to bound peak memory at metropolis scale; it
must produce *identical* edge arrays -- same order, same float64 attrs --
as the reference loop on any dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.city import CityConfig
from repro.city.simulator import simulate_uncached
from repro.data.dataset import SiteRecDataset
from repro.graphs.hetero import build_hetero_multigraph


@pytest.fixture(scope="module")
def dataset():
    sim = simulate_uncached(
        CityConfig(rows=9, cols=9, num_days=3, num_couriers=90, seed=17,
                   base_population=2000.0)
    )
    return SiteRecDataset.from_simulation(sim)


@pytest.fixture(scope="module")
def graphs(dataset):
    ref = build_hetero_multigraph(dataset, streaming=False)
    stream = build_hetero_multigraph(dataset, streaming=True)
    return ref, stream


def test_su_edges_identical(graphs):
    ref, stream = graphs
    for period, sub_ref in ref.subgraphs.items():
        sub_s = stream.subgraphs[period]
        assert np.array_equal(sub_ref.su_src_u, sub_s.su_src_u), period
        assert np.array_equal(sub_ref.su_dst_s, sub_s.su_dst_s), period
        assert np.array_equal(sub_ref.su_attr, sub_s.su_attr), period


def test_ua_and_sa_identical(graphs):
    ref, stream = graphs
    assert np.array_equal(ref.sa_src_s, stream.sa_src_s)
    assert np.array_equal(ref.sa_dst_a, stream.sa_dst_a)
    assert np.array_equal(ref.sa_attr, stream.sa_attr)
    for period, sub_ref in ref.subgraphs.items():
        sub_s = stream.subgraphs[period]
        assert np.array_equal(sub_ref.ua_src_a, sub_s.ua_src_a)
        assert np.array_equal(sub_ref.ua_dst_u, sub_s.ua_dst_u)
        assert np.array_equal(sub_ref.ua_attr, sub_s.ua_attr)


def test_streaming_matches_windowed_reference(dataset):
    """Streaming equals the reference even when the latter windows rows."""
    import repro.graphs.hetero as hetero

    old = hetero.DENSE_DISTANCE_LIMIT
    hetero.DENSE_DISTANCE_LIMIT = 64  # force banding + windowed reference
    try:
        ref = build_hetero_multigraph(dataset, streaming=False)
        stream = build_hetero_multigraph(dataset, streaming=True)
    finally:
        hetero.DENSE_DISTANCE_LIMIT = old
    for period, sub_ref in ref.subgraphs.items():
        sub_s = stream.subgraphs[period]
        assert np.array_equal(sub_ref.su_dst_s, sub_s.su_dst_s)
        assert np.array_equal(sub_ref.su_attr, sub_s.su_attr)
