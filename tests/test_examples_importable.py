"""Every example script must at least import and expose main().

(Full executions are exercised manually / in the docs; importing catches
API drift immediately.)
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} needs main()"


def test_at_least_nine_examples():
    assert len(EXAMPLES) >= 9
