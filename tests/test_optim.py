"""Optimizers, gradient clipping and losses."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import SGD, Adam, clip_grad_norm, l1_loss, l2_penalty, mse_loss
from repro.tensor import Tensor


def quadratic_step(opt, p):
    """One optimisation step on f(p) = sum(p^2)."""
    opt.zero_grad()
    (p * p).sum().backward()
    opt.step()


class TestSGD:
    def test_descends_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            quadratic_step(opt, p)
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                quadratic_step(opt, p)
            return abs(p.data.item())

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.zeros(1)
        opt.step()
        assert p.data.item() < 1.0

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no backward happened
        assert p.data.item() == 1.0


class TestAdam:
    def test_descends_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            quadratic_step(opt, p)
        assert np.abs(p.data).max() < 1e-3

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        X = Tensor(rng.normal(size=(64, 4)))
        true_w = rng.normal(size=(4, 1))
        y = Tensor(X.data @ true_w)
        lin = Linear(4, 1)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(lin(X), y)
            loss.backward()
            opt.step()
        assert loss.item() < 1e-4

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * 3).sum().backward()
        opt.step()
        # With bias correction the first step is ~lr regardless of gradient scale.
        assert np.isclose(p.data.item(), 1.0 - 0.1, atol=1e-6)


class TestOptimizerValidation:
    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.1)

    def test_ignores_none(self):
        assert clip_grad_norm([Parameter(np.zeros(1))], 1.0) == 0.0


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_l1_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        assert l1_loss(pred, np.zeros(2)).item() == pytest.approx(1.5)

    def test_l2_penalty(self):
        p = Parameter(np.array([2.0, 1.0]))
        assert l2_penalty([p], 0.5).item() == pytest.approx(2.5)

    def test_l2_penalty_empty(self):
        assert l2_penalty([], 0.5).item() == 0.0

    def test_losses_are_differentiable(self):
        p = Parameter(np.array([1.0, 2.0]))
        mse_loss(p * 1.0, np.zeros(2)).backward()
        assert p.grad is not None
