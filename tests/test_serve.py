"""The online serving layer: snapshots, cache, batching, service, protocol."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, recommend_sites, save_model
from repro.nn import init
from repro.serve import (
    LatencyHistogram,
    MicroBatcher,
    ModelSnapshot,
    RecommendationService,
    ScoreCache,
    ServiceMetrics,
    candidate_digest,
    handle_line,
    serve_http,
)
from repro.serve.__main__ import main as serve_main


@pytest.fixture(scope="module")
def served_model(micro_dataset, micro_split):
    init.seed(4)
    return O2SiteRec(
        micro_dataset,
        micro_split,
        O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
    )


@pytest.fixture(scope="module")
def snapshot(served_model):
    return ModelSnapshot.from_model(served_model)


@pytest.fixture()
def service(snapshot):
    svc = RecommendationService(
        snapshot, max_batch_size=16, batch_window_ms=1.0, num_workers=2
    )
    yield svc
    svc.close()


class TestModelSnapshot:
    def test_scores_match_model_bit_for_bit(
        self, served_model, snapshot, micro_split
    ):
        pairs = micro_split.test_pairs[:20]
        cold = served_model.predict(pairs)
        warm = snapshot.predict(pairs)
        assert np.array_equal(cold, warm)  # identical bits, not just close

    def test_matches_ablated_variants(self, micro_dataset, micro_split):
        init.seed(4)
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(
                capacity_dim=6,
                embedding_dim=20,
                time_attention=False,
                commercial_in_predictor=False,
            ),
        )
        pairs = micro_split.test_pairs[:10]
        snap = ModelSnapshot.from_model(model)
        assert np.array_equal(model.predict(pairs), snap.predict(pairs))

    def test_recommend_sites_drop_in(self, served_model, snapshot, micro_split):
        candidates = micro_split.test_regions_for_type(1)
        from_model = recommend_sites(served_model, 1, candidates, k=3)
        from_snapshot = recommend_sites(snapshot, 1, candidates, k=3)
        assert from_model == from_snapshot

    def test_unknown_region_raises(self, snapshot):
        bogus = 10_000
        assert bogus not in snapshot.candidate_regions()
        with pytest.raises(KeyError, match="not a store region"):
            snapshot.predict(np.array([[bogus, 0]]))

    def test_type_index_by_name_and_index(self, snapshot):
        name = snapshot.type_names[2]
        assert snapshot.type_index(name) == 2
        assert snapshot.type_index(2) == 2
        with pytest.raises(KeyError):
            snapshot.type_index("no_such_type")
        with pytest.raises(KeyError):
            snapshot.type_index(snapshot.num_types)

    def test_save_load_roundtrip_suffixless(
        self, snapshot, micro_split, tmp_path
    ):
        written = snapshot.save(tmp_path / "snap")  # no .npz suffix
        assert written == tmp_path / "snap.npz"
        restored = ModelSnapshot.load(tmp_path / "snap")
        pairs = micro_split.test_pairs[:10]
        assert np.array_equal(snapshot.predict(pairs), restored.predict(pairs))
        assert restored.snapshot_id == snapshot.snapshot_id
        assert restored.type_names == snapshot.type_names
        assert restored.target_scale == snapshot.target_scale

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not an O2-SiteRec serving snapshot"):
            ModelSnapshot.load(path)


class TestScoreCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ScoreCache(max_entries=2, ttl_s=60.0)
        a, b, c = np.ones(2), np.ones(3), np.ones(4)
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refreshes recency
        cache.put("c", c)  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") is a and cache.get("c") is c
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["size"] == 2

    def test_ttl_expiry(self):
        now = [0.0]
        cache = ScoreCache(max_entries=4, ttl_s=10.0, clock=lambda: now[0])
        cache.put("k", np.zeros(1))
        assert cache.get("k") is not None
        now[0] = 11.0
        assert cache.get("k") is None
        assert cache.stats()["expirations"] == 1

    def test_zero_entries_disables_storage(self):
        cache = ScoreCache(max_entries=0)
        cache.put("k", np.zeros(1))
        assert cache.get("k") is None and len(cache) == 0

    def test_candidate_digest_order_sensitive(self):
        a = np.array([1, 2, 3])
        assert candidate_digest(a) == candidate_digest(a.copy())
        assert candidate_digest(a) != candidate_digest(a[::-1])


class TestMetrics:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 500):
            hist.observe(ms / 1e3)
        assert hist.count == 10
        assert hist.percentile(50) < hist.percentile(99)
        assert hist.summary()["p99_ms"] >= 100

    def test_qps_window(self):
        now = [0.0]
        metrics = ServiceMetrics(clock=lambda: now[0], qps_window_s=10.0)
        for _ in range(20):
            now[0] += 0.1
            metrics.mark_request()
        assert metrics.qps() == pytest.approx(10.0, rel=0.2)
        now[0] += 100.0  # everything falls out of the window
        assert metrics.qps() == 0.0

    def test_snapshot_structure(self):
        metrics = ServiceMetrics()
        metrics.observe("score", 0.001)
        metrics.increment("queries")
        report = metrics.snapshot()
        assert report["counters"]["queries"] == 1
        assert "score" in report["latency"]


class TestMicroBatcher:
    def test_concurrent_requests_share_batches(self, snapshot, micro_split):
        pairs = micro_split.test_pairs[:8]
        expected = snapshot.predict(pairs)
        metrics = ServiceMetrics()
        with MicroBatcher(
            snapshot.predict,
            max_batch_size=64,
            batch_window_s=0.05,
            num_workers=1,
            metrics=metrics,
        ) as batcher:
            futures = [batcher.submit(pairs[i:i + 1]) for i in range(len(pairs))]
            got = np.concatenate([f.result(timeout=10) for f in futures])
        assert np.array_equal(got, expected)
        # One worker with a generous window merges the backlog.
        assert metrics.counter("batches") < len(pairs)
        assert metrics.counter("batched_requests") == len(pairs)

    def test_error_propagates_to_all_callers(self):
        def boom(pairs):
            raise RuntimeError("scoring failed")

        with MicroBatcher(boom, batch_window_s=0.01) as batcher:
            future = batcher.submit(np.array([[0, 0]]))
            with pytest.raises(RuntimeError, match="scoring failed"):
                future.result(timeout=10)

    def test_submit_after_close_raises(self, snapshot):
        batcher = MicroBatcher(snapshot.predict)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.array([[0, 0]]))


class TestRecommendationService:
    def test_topk_matches_direct_ranking(self, service, snapshot):
        results = service.query(2, k=4)
        candidates = snapshot.candidate_regions()
        scores = snapshot.score_candidates(2, candidates)
        order = np.argsort(-scores, kind="stable")[:4]
        assert [r.region for r in results] == [int(candidates[i]) for i in order]
        assert results[0].predicted_orders == pytest.approx(
            results[0].score * snapshot.target_scale
        )

    def test_candidate_filters_and_per_type_defaults(self, snapshot):
        with RecommendationService(
            snapshot, default_k=2, per_type_k={1: 5}
        ) as svc:
            assert len(svc.query(0)) == 2  # default_k
            assert len(svc.query(1)) == 5  # per-type override
            top = svc.query(1, k=1)[0]
            filtered = svc.query(1, k=1, exclude_regions=[top.region])
            assert filtered[0].region != top.region

    def test_min_score_floor(self, service):
        everything = service.query(3, k=100)
        floor = everything[1].score  # keep only the strictly better ones
        kept = service.query(3, k=100, min_score=floor)
        assert len(kept) >= 1
        assert all(r.score >= floor for r in kept)

    def test_query_by_type_name(self, service, snapshot):
        name = snapshot.type_names[0]
        assert service.query(name, k=2) == service.query(0, k=2)

    def test_repeat_query_hits_cache(self, service):
        service.query(2, k=3)
        misses = service.cache.misses
        hits = service.cache.hits
        assert service.query(2, k=5)[:3] == service.query(2, k=3)
        assert service.cache.hits > hits
        assert service.cache.misses == misses

    def test_reload_swaps_snapshot_and_invalidates_cache(
        self, snapshot, micro_dataset, micro_split
    ):
        init.seed(9)  # different weights -> different scores
        other = ModelSnapshot.from_model(
            O2SiteRec(
                micro_dataset,
                micro_split,
                O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
            )
        )
        assert other.snapshot_id != snapshot.snapshot_id
        with RecommendationService(snapshot) as svc:
            before = svc.query(1, k=3)
            assert len(svc.cache) > 0
            deployed = svc.reload(other)
            assert deployed is other and svc.snapshot is other
            assert len(svc.cache) == 0  # cleared on swap
            after = svc.query(1, k=3)
            assert [r.score for r in after] != [r.score for r in before]
            # The fresh query recomputed rather than reusing stale scores.
            assert svc.cache.hits == 0
            assert svc.metrics.counter("reloads") == 1
            assert svc.stats()["snapshot"]["id"] == other.snapshot_id

    def test_reload_from_file(self, snapshot, service, tmp_path):
        path = snapshot.save(tmp_path / "again.npz")
        deployed = service.reload(path)
        assert deployed.snapshot_id == snapshot.snapshot_id

    def test_concurrent_queries_are_consistent(self, service, snapshot):
        types = [t % snapshot.num_types for t in range(24)]
        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(lambda t: service.query(t, k=2), types))
        for t, result in zip(types, results):
            # Batched GEMMs may round the last ulp differently than a solo
            # pass, so compare up to float tolerance, not bitwise.
            reference = service.query(t, k=2)
            assert [r.region for r in result] == [r.region for r in reference]
            assert [r.score for r in result] == pytest.approx(
                [r.score for r in reference]
            )

    def test_stats_shape(self, service):
        service.query(0)
        stats = service.stats()
        assert stats["counters"]["queries"] >= 1
        assert "total" in stats["latency"]
        assert stats["cache"]["size"] >= 0
        assert stats["snapshot"]["types"] == service.snapshot.num_types
        assert stats["batching"]["max_batch_size"] == 16


class TestProtocol:
    def test_ping_and_quit(self, service):
        assert handle_line(service, "PING") == ("PONG", True)
        response, keep_going = handle_line(service, "quit")
        assert response == "BYE" and not keep_going

    def test_types_lists_names(self, service, snapshot):
        response, _ = handle_line(service, "TYPES")
        names = json.loads(response[3:])
        assert names["0"] == snapshot.type_names[0]

    def test_query_with_options(self, service, snapshot):
        candidates = snapshot.candidate_regions()[:6]
        joined = ",".join(str(int(r)) for r in candidates)
        response, _ = handle_line(
            service, f"QUERY 2 K=2 CANDIDATES={joined} EXCLUDE={int(candidates[0])}"
        )
        assert response.startswith("OK ")
        rows = json.loads(response[3:])
        assert len(rows) == 2
        assert all(row["region"] != int(candidates[0]) for row in rows)
        assert rows[0]["type_name"] == snapshot.type_names[2]

    def test_query_by_name(self, service, snapshot):
        response, _ = handle_line(service, f"QUERY {snapshot.type_names[1]} K=1")
        assert response.startswith("OK ")

    def test_errors(self, service):
        assert handle_line(service, "")[0].startswith("ERR")
        assert handle_line(service, "FROBNICATE")[0].startswith("ERR")
        assert handle_line(service, "QUERY")[0].startswith("ERR")
        assert handle_line(service, "QUERY 999")[0].startswith("ERR")
        assert handle_line(service, "QUERY 0 BOGUS=1")[0].startswith("ERR")
        assert handle_line(service, "RELOAD")[0].startswith("ERR")

    def test_stats_roundtrips_json(self, service):
        response, _ = handle_line(service, "STATS")
        assert json.loads(response[3:])["snapshot"]["id"]

    def test_reload_command(self, service, snapshot, tmp_path):
        path = snapshot.save(tmp_path / "reload.npz")
        response, _ = handle_line(service, f"RELOAD {path}")
        assert json.loads(response[3:])["snapshot_id"] == snapshot.snapshot_id

    def test_reload_missing_file_keeps_serving(self, service, tmp_path):
        response, keep_going = handle_line(
            service, f"RELOAD {tmp_path / 'absent.npz'}"
        )
        assert response.startswith("ERR")
        assert keep_going
        assert handle_line(service, "PING") == ("PONG", True)

    def test_http_endpoints(self, service):
        server = serve_http(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def get(path):
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=10
                ) as response:
                    return response.status, json.loads(response.read())

            assert get("/healthz") == (200, {"status": "ok"})
            status, rows = get("/recommend?type=2&k=2")
            assert status == 200 and len(rows) == 2
            status, stats = get("/stats")
            assert status == 200 and stats["counters"]["queries"] >= 1
            status, types = get("/types")
            assert status == 200 and len(types) == service.snapshot.num_types
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/recommend")  # missing type
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                get("/nope")
            assert err.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestServeCli:
    @pytest.fixture(scope="class")
    def snapshot_file(self, snapshot, tmp_path_factory):
        return snapshot.save(tmp_path_factory.mktemp("serve") / "snap.npz")

    def test_once_query(self, snapshot_file, capsys):
        rc = serve_main(
            ["--snapshot", str(snapshot_file), "--once", "QUERY 2 K=2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("OK ")
        assert len(json.loads(out[3:])) == 2

    def test_once_error_exit_code(self, snapshot_file, capsys):
        rc = serve_main(
            ["--snapshot", str(snapshot_file), "--once", "QUERY 999"]
        )
        assert rc == 1
        assert capsys.readouterr().out.startswith("ERR")

    def test_checkpoint_export_roundtrip(
        self, served_model, micro_split, tmp_path, monkeypatch, capsys
    ):
        # Freeze a checkpoint into a snapshot via the CLI, monkeypatching
        # the preset loader to reuse the session fixtures (a full preset
        # rebuild is too slow for the tier-1 suite).
        ckpt = tmp_path / "model"  # suffixless: exercises the .npz fix
        save_model(served_model, ckpt)
        import repro.serve.__main__ as serve_cli

        monkeypatch.setattr(
            serve_cli,
            "_load_snapshot",
            lambda args: (
                ModelSnapshot.from_checkpoint(
                    args.checkpoint,
                    served_model.dataset,
                    micro_split,
                )
            ),
        )
        out_path = tmp_path / "frozen.npz"
        rc = serve_main(
            [
                "--checkpoint", str(ckpt),
                "--export-snapshot", str(out_path),
            ]
        )
        assert rc == 0 and out_path.exists()
        assert "wrote snapshot" in capsys.readouterr().out
