"""Graph constructions: Definitions 2-4."""

import numpy as np
import pytest

from repro.data import TimePeriod
from repro.graphs import (
    CourierMobilityMultiGraph,
    RegionGeographicalGraph,
    build_hetero_multigraph,
)


@pytest.fixture(scope="module")
def geo(dataset):
    return RegionGeographicalGraph.from_grid(dataset.grid)


@pytest.fixture(scope="module")
def mobility(dataset):
    return CourierMobilityMultiGraph.from_aggregates(dataset.aggregates)


@pytest.fixture(scope="module")
def hetero(dataset, split):
    return build_hetero_multigraph(dataset, split=split)


class TestGeographicalGraph:
    def test_edges_within_threshold(self, geo):
        assert geo.num_edges > 0
        assert geo.distance.max() <= 800.0

    def test_directed_both_ways(self, geo):
        pairs = set(zip(geo.src.tolist(), geo.dst.tolist()))
        assert all((j, i) in pairs for i, j in pairs)

    def test_no_self_loops(self, geo):
        assert np.all(geo.src != geo.dst)

    def test_neighbors_of(self, geo, dataset):
        center = dataset.grid.center_region()
        neigh = geo.neighbors_of(center)
        assert len(neigh) == 8  # rook + diagonal within 800 m

    def test_invalid_threshold(self, dataset):
        with pytest.raises(ValueError):
            RegionGeographicalGraph.from_grid(dataset.grid, threshold_m=0)


class TestMobilityGraph:
    def test_every_period_present(self, mobility):
        assert set(mobility.subgraphs) == set(TimePeriod)

    def test_delivery_time_normalised(self, mobility):
        for period in TimePeriod:
            sg = mobility.subgraph(period)
            if sg.num_edges:
                assert sg.delivery_time.min() > 0
                assert sg.delivery_time.mean() < 2.0  # ~ under 2 hours

    def test_min_count_filter(self, dataset):
        loose = CourierMobilityMultiGraph.from_aggregates(dataset.aggregates, 1)
        strict = CourierMobilityMultiGraph.from_aggregates(dataset.aggregates, 3)
        assert strict.total_edges < loose.total_edges
        for period in TimePeriod:
            assert np.all(strict.subgraph(period).count >= 3)

    def test_undirected_neighbors_doubles(self, mobility):
        sg = mobility.subgraph(TimePeriod.NOON_RUSH)
        src, dst = sg.undirected_neighbors()
        assert len(src) == 2 * sg.num_edges

    def test_invalid_time_scale(self, dataset):
        with pytest.raises(ValueError):
            CourierMobilityMultiGraph.from_aggregates(
                dataset.aggregates, time_scale_min=0
            )


class TestHeteroGraph:
    def test_node_sets(self, hetero, dataset):
        assert hetero.num_store_nodes == len(dataset.store_regions)
        assert hetero.num_customer_nodes == len(dataset.customer_regions)
        assert hetero.num_types == dataset.num_types

    def test_node_features_aligned(self, hetero, dataset):
        assert hetero.store_features.shape == (
            hetero.num_store_nodes,
            dataset.region_features.shape[1],
        )

    def test_sa_edges_match_store_registry(self, hetero, dataset):
        for s_idx, a in zip(hetero.sa_src_s, hetero.sa_dst_a):
            region = hetero.store_regions[s_idx]
            assert dataset.store_counts[region, a] > 0

    def test_sa_mask_hides_test_pairs(self, hetero, dataset, split):
        test_set = {tuple(p) for p in split.test_pairs}
        for (s_idx, a), attr in zip(
            zip(hetero.sa_src_s, hetero.sa_dst_a), hetero.sa_attr
        ):
            region = int(hetero.store_regions[s_idx])
            if (region, int(a)) in test_set:
                assert attr[2] == 0.0

    def test_sa_train_pairs_keep_counts(self, hetero, dataset, split):
        train_set = {tuple(p) for p in split.train_pairs}
        kept = 0
        for (s_idx, a), attr in zip(
            zip(hetero.sa_src_s, hetero.sa_dst_a), hetero.sa_attr
        ):
            region = int(hetero.store_regions[s_idx])
            if (region, int(a)) in train_set and attr[2] > 0:
                kept += 1
        assert kept > 0

    def test_su_edges_within_farthest_distance(self, hetero, dataset):
        agg = dataset.aggregates
        for period in TimePeriod:
            sg = hetero.subgraph(period)
            for (rs, ru), attr in zip(sg.su_region_pairs[:200], sg.su_attr[:200]):
                far = agg.farthest_distance[rs, int(period)]
                if far > 0:
                    d = dataset.grid.distance(int(rs), int(ru))
                    assert d <= far + 1e-6

    def test_su_attr_shape(self, hetero):
        for period in TimePeriod:
            sg = hetero.subgraph(period)
            assert sg.su_attr.shape == (sg.num_su_edges, 2)
            assert sg.su_region_pairs.shape == (sg.num_su_edges, 2)

    def test_ua_edges_match_counts(self, hetero, dataset):
        agg = dataset.aggregates
        for period in TimePeriod:
            sg = hetero.subgraph(period)
            for a, u_idx in zip(sg.ua_src_a[:200], sg.ua_dst_u[:200]):
                region = hetero.customer_regions[u_idx]
                assert agg.counts_uat[region, a, int(period)] > 0

    def test_capacity_unaware_has_flat_scope(self, dataset, split):
        unaware = build_hetero_multigraph(
            dataset, split=split, capacity_aware=False
        )
        from repro.graphs import FALLBACK_SCOPE_M

        for period in TimePeriod:
            sg = unaware.subgraph(period)
            for rs, ru in sg.su_region_pairs[:200]:
                assert dataset.grid.distance(int(rs), int(ru)) <= FALLBACK_SCOPE_M

    def test_store_index_of(self, hetero):
        region = int(hetero.store_regions[3])
        assert hetero.store_index_of(region) == 3
        with pytest.raises(KeyError):
            hetero.store_index_of(10**6)

    def test_no_split_keeps_all_counts(self, dataset):
        unmasked = build_hetero_multigraph(dataset, split=None)
        total = unmasked.sa_attr[:, 2].sum()
        masked = build_hetero_multigraph(dataset, split=dataset.split(0))
        assert total >= masked.sa_attr[:, 2].sum()
