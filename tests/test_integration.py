"""End-to-end integration: simulate -> persist -> rebuild -> train -> rank.

Exercises the whole public API surface the way a downstream user would.
"""

import numpy as np
import pytest

from repro.city import CityConfig, simulate
from repro.core import (
    O2SiteRec,
    O2SiteRecConfig,
    TrainConfig,
    Trainer,
    recommend_sites,
)
from repro.data import (
    OrderAggregates,
    SiteRecDataset,
    load_orders,
    save_orders,
)
from repro.metrics import evaluate_model
from repro.nn import init


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Simulate, round-trip the order log through CSV, rebuild the dataset."""
    sim = simulate(
        CityConfig(rows=6, cols=6, num_days=4, num_couriers=50, seed=11)
    )
    path = tmp_path_factory.mktemp("data") / "orders.csv"
    save_orders(sim.orders, path)
    orders = load_orders(path)

    # Rebuild observable aggregates purely from the persisted log.
    aggregates = OrderAggregates.from_orders(
        orders, sim.land.num_regions, sim.config.num_store_types
    )
    dataset = SiteRecDataset.from_simulation(sim)
    assert np.allclose(dataset.aggregates.counts_sa, aggregates.counts_sa)
    return sim, dataset


class TestEndToEnd:
    def test_train_eval_recommend(self, pipeline):
        sim, dataset = pipeline
        split = dataset.split(seed=2)
        init.seed(5)
        model = O2SiteRec(
            dataset, split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
        )
        result = Trainer(model, TrainConfig(epochs=20, lr=5e-3, patience=8)).fit(
            split.train_pairs, dataset.pair_targets(split.train_pairs)
        )
        assert result.train_losses[-1] < result.train_losses[0]

        metrics = evaluate_model(model, dataset, split, top_n_frac=0.5)
        assert 0.0 <= metrics["NDCG@3"] <= 1.0
        assert metrics["RMSE"] < 0.5

        a = dataset.type_index("light_meal")
        recs = recommend_sites(
            model,
            a,
            split.test_regions_for_type(a),
            k=3,
            target_scale=dataset.target_scale,
        )
        assert len(recs) >= 1
        assert all(r.predicted_orders >= 0 or True for r in recs)

    def test_trained_model_beats_random_ranking(self, pipeline):
        sim, dataset = pipeline
        split = dataset.split(seed=2)
        init.seed(5)
        model = O2SiteRec(
            dataset, split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
        )
        Trainer(model, TrainConfig(epochs=25, lr=5e-3, patience=10)).fit(
            split.train_pairs, dataset.pair_targets(split.train_pairs)
        )
        trained = evaluate_model(model, dataset, split, top_n_frac=0.5)

        class Random:
            def predict(self, pairs):
                return np.random.default_rng(1).random(len(pairs))

        random_result = evaluate_model(Random(), dataset, split, top_n_frac=0.5)
        assert trained["NDCG@3"] > random_result["NDCG@3"]
