"""Record schemas (Table I) and their validation."""

import pytest

from repro.data import MINUTES_PER_DAY, OrderRecord, StoreRecord, TimePeriod, minute_of


def make_order(**overrides):
    base = dict(
        order_id="O1",
        store_id="S1",
        customer_id="U1",
        courier_id="C1",
        store_lon=121.49,
        store_lat=31.25,
        customer_lon=121.47,
        customer_lat=31.24,
        store_region=3,
        customer_region=5,
        created_minute=minute_of(2, 11, 39),
        accepted_minute=minute_of(2, 11, 40),
        pickup_minute=minute_of(2, 11, 50),
        delivered_minute=minute_of(2, 12, 23),
        distance_m=3780.0,
        store_type=4,
    )
    base.update(overrides)
    return OrderRecord(**base)


class TestOrderRecord:
    def test_table1_example_fields(self):
        o = make_order()
        assert o.day == 2
        assert o.hour == 11
        assert o.period == TimePeriod.NOON_RUSH

    def test_delivery_and_total_minutes(self):
        o = make_order()
        assert o.delivery_minutes == pytest.approx(33.0)
        assert o.total_minutes == pytest.approx(44.0)

    def test_rejects_unordered_timestamps(self):
        with pytest.raises(ValueError):
            make_order(accepted_minute=minute_of(2, 11, 38))
        with pytest.raises(ValueError):
            make_order(delivered_minute=minute_of(2, 11, 45))

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            make_order(distance_m=-1.0)

    def test_frozen(self):
        o = make_order()
        with pytest.raises(AttributeError):
            o.store_id = "S2"


class TestMinuteOf:
    def test_values(self):
        assert minute_of(0, 0, 0) == 0
        assert minute_of(1, 0, 0) == MINUTES_PER_DAY
        assert minute_of(0, 13, 30) == 13 * 60 + 30

    @pytest.mark.parametrize("args", [(-1, 0, 0), (0, 24, 0), (0, 0, 60)])
    def test_invalid(self, args):
        with pytest.raises(ValueError):
            minute_of(*args)


class TestStoreRecord:
    def test_fields(self):
        s = StoreRecord("S1", 3, 121.4, 31.2, region=7)
        assert s.store_type == 3
        assert s.region == 7
