"""Hyper-parameter grid search."""

import pytest

from repro.experiments import HarnessConfig, TrialResult, grid_search


class TestTrialResult:
    def test_overrides_dict(self):
        t = TrialResult(
            overrides=(("beta", 0.2),), metric="NDCG@3", mean=0.5, std=0.01, rounds=2
        )
        assert t.overrides_dict == {"beta": 0.2}


class TestGridSearch:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search({})

    @pytest.mark.slow
    def test_ranks_by_metric(self):
        config = HarnessConfig(rounds=1, scale=0.45, epochs=4, patience=10)
        trials = grid_search(
            {"beta": [0.0, 0.2]},
            config=config,
            metric="NDCG@3",
        )
        assert len(trials) == 2
        assert trials[0].mean >= trials[1].mean
        assert {t.overrides_dict["beta"] for t in trials} == {0.0, 0.2}

    @pytest.mark.slow
    def test_rmse_minimised(self):
        config = HarnessConfig(rounds=1, scale=0.45, epochs=3, patience=10)
        trials = grid_search(
            {"embedding_dim": [20, 40]}, config=config, metric="RMSE"
        )
        assert trials[0].mean <= trials[1].mean
