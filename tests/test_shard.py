"""Sharded propagation (``repro.core.shard``): bit-identity and gating.

The executor's contract is the strongest the repo makes: the stitched
per-tile result must be **byte-for-byte** the unsharded per-period
reference, across the ablation grid (capacity / preferences / C kernels),
across serial in-process and forked-pool execution, and through a whole
training ``fit`` (loss curves + final parameter fingerprint).  Anything
weaker would let the metropolis path drift from the paper's model.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro import parallel
from repro.core import shard
from repro.core.model import O2SiteRec, O2SiteRecConfig
from repro.core.recommender import set_batch_periods
from repro.core.trainer import TrainConfig, Trainer
from repro.tensor import cnative


@pytest.fixture(autouse=True)
def _restore_toggles():
    """Every test leaves the global shard/pool/batching state untouched."""
    prev_tiles = shard.set_shard_tiles(None)
    shard.set_shard_tiles(prev_tiles)
    prev_procs = parallel.set_num_procs(None)
    parallel.set_num_procs(prev_procs)
    prev_bp = set_batch_periods(True)
    set_batch_periods(prev_bp)
    prev_c = cnative.set_c_kernels(True)
    cnative.set_c_kernels(prev_c)
    yield
    shard.set_shard_tiles(prev_tiles)
    parallel.set_num_procs(prev_procs)
    set_batch_periods(prev_bp)
    cnative.set_c_kernels(prev_c)


def _sha_periods(out) -> str:
    digest = hashlib.sha256()
    for period in sorted(out, key=int):
        h, q = out[period]
        digest.update(h.data.tobytes())
        digest.update(q.data.tobytes())
    return digest.hexdigest()


def _propagate_sha(model, tiles: int, procs: int) -> str:
    shard.set_shard_tiles(tiles)
    parallel.set_num_procs(procs)
    capacity_su, _ = model._capacity_pass()
    return _sha_periods(model.recommender.propagate_periods(capacity_su))


@pytest.mark.parametrize("variant", ["full", "wo_co", "wo_cocu"])
def test_sharded_bitwise_equals_unsharded(dataset, variant):
    config = O2SiteRecConfig()
    if variant == "wo_co":
        config = config.without_capacity()
    elif variant == "wo_cocu":
        config = config.without_capacity_and_preferences()
    set_batch_periods(False)
    model = O2SiteRec(dataset, config=config)
    model.eval()
    reference = _propagate_sha(model, tiles=0, procs=0)
    assert _propagate_sha(model, tiles=3, procs=0) == reference
    assert _propagate_sha(model, tiles=3, procs=2) == reference
    # Non-divisible band count and the maximum (one band per grid row).
    assert _propagate_sha(model, tiles=5, procs=0) == reference
    rows = model.recommender.grid_shape[0]
    assert _propagate_sha(model, tiles=rows, procs=0) == reference


@pytest.mark.skipif(not cnative.available(), reason="C kernels not built")
def test_sharded_bitwise_without_c_kernels(dataset):
    set_batch_periods(False)
    cnative.set_c_kernels(False)
    model = O2SiteRec(dataset)
    model.eval()
    reference = _propagate_sha(model, tiles=0, procs=0)
    assert _propagate_sha(model, tiles=3, procs=0) == reference
    assert _propagate_sha(model, tiles=3, procs=2) == reference


def test_fit_identical_with_sharded_eval(dataset, split):
    """Loss curves and final parameters survive sharded eval untouched."""
    set_batch_periods(False)
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)

    def fingerprint(shard_tiles):
        from repro.nn import init

        init.seed(0)
        model = O2SiteRec(dataset, split=split)
        trainer = Trainer(
            model,
            TrainConfig(epochs=2, min_epochs=1, seed=0,
                        shard_tiles=shard_tiles),
        )
        result = trainer.fit(pairs, targets)
        digest = hashlib.sha256()
        for param in model.parameters():
            digest.update(param.data.tobytes())
        return result.train_losses, result.validation_losses, digest.hexdigest()

    unsharded = fingerprint(0)
    sharded = fingerprint(3)
    assert sharded[0] == unsharded[0]  # train losses, float-exact
    assert sharded[1] == unsharded[1]  # validation losses, float-exact
    assert sharded[2] == unsharded[2]  # parameter bytes


def test_gate_off_below_threshold_and_in_training(dataset):
    model = O2SiteRec(dataset)
    rec = model.recommender
    model.eval()
    # Auto gate: the tiny grid sits far below O2_SHARD_MIN_REGIONS.
    assert shard.shard_tiles_for(rec) == 0
    # Forced on -- then training mode must still win.
    shard.set_shard_tiles(3)
    assert shard.shard_tiles_for(rec) == 3
    model.train()
    assert shard.shard_tiles_for(rec) == 0
    model.eval()
    # tiles <= 1 disables; tile counts are clamped to the grid rows.
    shard.set_shard_tiles(1)
    assert shard.shard_tiles_for(rec) == 0
    shard.set_shard_tiles(10_000)
    assert shard.shard_tiles_for(rec) == rec.grid_shape[0]


def test_resolve_tiles_env(monkeypatch):
    monkeypatch.setattr(shard, "_tile_override", None)
    # Explicit off beats the auto threshold.
    monkeypatch.setenv("O2_SHARD_TILES", "0")
    assert shard.resolve_shard_tiles(1_000_000) == 0
    monkeypatch.setenv("O2_SHARD_TILES", "off")
    assert shard.resolve_shard_tiles(1_000_000) == 0
    monkeypatch.setenv("O2_SHARD_TILES", "6")
    assert shard.resolve_shard_tiles(16) == 6
    monkeypatch.delenv("O2_SHARD_TILES")
    # Auto: engages at the metropolis threshold, serial or not.
    assert shard.resolve_shard_tiles(shard._AUTO_MIN_REGIONS) == (
        shard.DEFAULT_SHARD_TILES
    )
    assert shard.resolve_shard_tiles(shard._AUTO_MIN_REGIONS - 1) == 0
    monkeypatch.setenv("O2_SHARD_MIN_REGIONS", "10")
    assert shard.resolve_shard_tiles(10) == shard.DEFAULT_SHARD_TILES


def test_no_shard_inside_pool_worker(dataset, monkeypatch):
    """A fan-out worker must not re-shard (no nested pools, no recursion)."""
    model = O2SiteRec(dataset)
    model.eval()
    shard.set_shard_tiles(3)
    monkeypatch.setattr(parallel, "_in_worker", True)
    assert shard.shard_tiles_for(model.recommender) == 0


def test_snapshot_from_sharded_build_matches(dataset, split):
    """Per-tile snapshot build: same fingerprint, tiles recorded in meta."""
    from repro.nn import init
    from repro.serve.snapshot import ModelSnapshot

    set_batch_periods(False)
    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.eval()
    plain = ModelSnapshot.from_model(model, shard_tiles=0)
    tiled = ModelSnapshot.from_model(model, shard_tiles=3)
    assert tiled.snapshot_id == plain.snapshot_id
    assert tiled.meta["shard_tiles"] == 3
    assert plain.meta["shard_tiles"] == 0
    test_pairs = split.test_pairs[:16]
    assert np.array_equal(tiled.predict(test_pairs), plain.predict(test_pairs))
