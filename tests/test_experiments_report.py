"""The auto-generated reproduction report."""

from pathlib import Path

import pytest

from repro.experiments.report import (
    SECTION_ORDER,
    build_report,
    collect_results,
    report_status,
    write_report,
)


@pytest.fixture()
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig01.txt").write_text("Fig. 1 -- demo block\nrow 1\n")
    (d / "table03.txt").write_text("Table III -- demo block\n")
    return d


class TestCollect:
    def test_reads_blocks(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"fig01", "table03"}
        assert "demo block" in results["fig01"]

    def test_missing_dir_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestStatus:
    def test_partitions_present_and_missing(self, results_dir):
        status = report_status(results_dir)
        assert "fig01" in status.present
        assert "fig16" in status.missing
        assert not status.complete

    def test_expected_ids_cover_registry_benches(self):
        expected = {rid for _, ids in SECTION_ORDER for rid in ids}
        # Every paper experiment appears (registry ids use slightly
        # different spellings for fig1 vs fig01 blocks).
        assert {"table03", "table04", "fig10", "fig15"} <= expected


class TestBuildReport:
    def test_sections_and_blocks(self, results_dir):
        text = build_report(results_dir)
        assert "# Reproduction report" in text
        assert "## Motivation (Section II)" in text
        assert "Fig. 1 -- demo block" in text
        assert "Missing blocks" in text

    def test_empty_dir_yields_header_only(self, tmp_path):
        text = build_report(tmp_path)
        assert "# Reproduction report" in text
        assert "```" not in text


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, output=tmp_path / "REPORT.md")
        assert out.exists()
        assert "demo block" in out.read_text()

    def test_real_results_assemble(self):
        real = Path(__file__).parent.parent / "benchmarks" / "results"
        if not real.is_dir():
            pytest.skip("no bench results yet")
        text = build_report(real)
        assert "Table III" in text
