"""Step compiler: trace-and-replay plans vs eager tape execution.

Three layers of guarantees, matching what ``repro.tensor.plan`` promises:

* compiled training is bit-for-bit identical to eager training -- loss
  curves, final parameters, and post-fit predictions -- across the
  ``O2_FAST_KERNELS`` x ``O2_BUFFER_POOL`` ablation grid, with the plans
  actually engaged (captures and replays observed, zero eager fallbacks);
* replay never corrupts caller state: the pinned input buffers are
  private copies, so the batch arrays handed to ``CompiledStep.step``
  are byte-identical afterwards;
* the compiler is fail-soft: guard flips (kernel switches, train/eval
  mode) evict and recapture rather than replay a stale plan, and batches
  whose capture cannot cover the tape fall back to the eager path while
  still completing a full training step.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.nn import init
from repro.optim import Adam
from repro.optim.optimizer import clip_grad_norm
from repro.tensor import use_buffer_pool, use_fast_kernels
from repro.tensor import plan as plan_mod
from repro.tensor.plan import CompiledStep


def _param_sha256(model) -> str:
    return hashlib.sha256(
        b"".join(
            np.ascontiguousarray(p.data).tobytes() for p in model.parameters()
        )
    ).hexdigest()


def _fit_and_predict(dataset, split, compile_step, epochs=2, batch_size=None):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(7)
    model = O2SiteRec(
        dataset, split, O2SiteRecConfig(capacity_dim=6, embedding_dim=20)
    )
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=epochs,
            lr=1e-3,
            patience=epochs,
            min_epochs=epochs,
            batch_size=batch_size,
            compile_step=compile_step,
        ),
    )
    result = trainer.fit(pairs, targets)
    return (
        np.asarray(result.train_losses),
        np.asarray(result.validation_losses),
        model.predict(split.test_pairs),
        _param_sha256(model),
    )


def _make_compiled(model, optimizer):
    return CompiledStep(
        loss_fn=lambda p, t: model.loss(p, t)[0],
        parameters=model.parameters(),
        optimizer=optimizer,
        clip_fn=lambda: clip_grad_norm(model.parameters(), 5.0),
        guard_fn=lambda: (model.training,),
    )


class TestCompiledFitBitwise:
    """compile_step=True training is bit-for-bit equal to =False."""

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "reference"])
    @pytest.mark.parametrize("pooled", [True, False], ids=["pool", "no-pool"])
    def test_batched_fit_curve_bitwise(
        self, micro_dataset, micro_split, fast, pooled
    ):
        with use_fast_kernels(fast), use_buffer_pool(pooled):
            plan_mod.reset_stats()
            compiled = _fit_and_predict(
                micro_dataset, micro_split, compile_step=True, batch_size=32
            )
            stats = plan_mod.plan_stats()
            eager = _fit_and_predict(
                micro_dataset, micro_split, compile_step=False, batch_size=32
            )
        for got, want in zip(compiled[:3], eager[:3]):
            np.testing.assert_array_equal(got, want)
        assert compiled[3] == eager[3]
        # The identity must come from actual replays, not silent fallback.
        assert stats["captures"] >= 1
        assert stats["replays"] >= 1
        assert stats["eager_fallbacks"] == 0

    def test_full_batch_fit_curve_bitwise(self, micro_dataset, micro_split):
        plan_mod.reset_stats()
        compiled = _fit_and_predict(micro_dataset, micro_split, compile_step=True)
        stats = plan_mod.plan_stats()
        eager = _fit_and_predict(micro_dataset, micro_split, compile_step=False)
        for got, want in zip(compiled[:3], eager[:3]):
            np.testing.assert_array_equal(got, want)
        assert compiled[3] == eager[3]
        assert stats["captures"] >= 1 and stats["replays"] >= 1
        assert stats["eager_fallbacks"] == 0


class TestCompiledStepMechanics:
    def _setup(self, micro_dataset, micro_split):
        plan_mod.reset_stats()  # plan counters are process-wide
        init.seed(3)
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        model.train()
        optimizer = Adam(model.parameters(), lr=1e-3)
        pairs = micro_split.train_pairs[:24]
        targets = micro_dataset.pair_targets(pairs)
        return model, optimizer, pairs, targets

    def test_replay_does_not_mutate_caller_batches(
        self, micro_dataset, micro_split
    ):
        model, optimizer, pairs, targets = self._setup(micro_dataset, micro_split)
        compiled = _make_compiled(model, optimizer)
        try:
            first = np.ascontiguousarray(pairs[:16])
            first_t = targets[:16].copy()
            second = np.ascontiguousarray(pairs[8:24])
            second_t = targets[8:24].copy()
            snap_p, snap_t = first.copy(), first_t.copy()
            assert compiled.step(first, first_t) is not None  # capture
            assert compiled.step(second, second_t) is not None  # replay
            # The pinned plan buffers are private copies: replaying the
            # second batch must leave the first batch's arrays untouched.
            np.testing.assert_array_equal(first, snap_p)
            np.testing.assert_array_equal(first_t, snap_t)
        finally:
            compiled.close()

    def test_guard_flip_evicts_and_recaptures(self, micro_dataset, micro_split):
        model, optimizer, pairs, targets = self._setup(micro_dataset, micro_split)
        compiled = _make_compiled(model, optimizer)
        try:
            assert compiled.step(pairs, targets) is not None
            before = compiled.stats()
            assert before["captures"] == 1
            model.eval()  # flips the guard signature
            model.training = True  # keep dropout semantics of train mode
            model.training = False
            # A stale guard must evict the plan, then recapture fresh.
            model.train()
            model.eval()
            model.train()
            assert compiled.step(pairs, targets) is not None  # same guards: replay
            assert compiled.stats()["replays"] >= 1
            model.eval()
            result = compiled.step(pairs, targets)
            stats = compiled.stats()
            assert result is not None
            assert stats["guard_evictions"] >= 1
            assert stats["captures"] >= 2
        finally:
            compiled.close()

    def test_failed_signature_falls_back_to_eager(
        self, micro_dataset, micro_split
    ):
        model, optimizer, pairs, targets = self._setup(micro_dataset, micro_split)

        calls = {"n": 0}
        real_loss = model.loss

        def loss_fn(p, t):
            calls["n"] += 1
            root = real_loss(p, t)[0]
            plan_mod.poison("test: deliberately uncapturable")
            return root

        compiled = CompiledStep(
            loss_fn=loss_fn,
            parameters=model.parameters(),
            optimizer=optimizer,
            clip_fn=lambda: clip_grad_norm(model.parameters(), 5.0),
            guard_fn=None,
        )
        try:
            before = _param_sha256(model)
            # Capture attempt is poisoned but still completes a full
            # training step (loss + backward + clip + update)...
            loss_val = compiled.step(pairs, targets)
            assert loss_val is not None and np.isfinite(loss_val)
            assert _param_sha256(model) != before
            assert compiled.stats()["failed_signatures"] == 1
            # ... and the signature is remembered: later batches skip
            # capture entirely and report the eager fallback.
            assert compiled.step(pairs, targets) is None
            assert compiled.stats()["eager_fallbacks"] >= 1
            assert calls["n"] == 1
        finally:
            compiled.close()

    def test_pool_hit_rate_not_regressed_by_replay(
        self, micro_dataset, micro_split
    ):
        from repro.tensor import pool as pool_mod

        with use_buffer_pool(True):
            model, optimizer, pairs, targets = self._setup(
                micro_dataset, micro_split
            )
            compiled = _make_compiled(model, optimizer)
            try:
                compiled.step(pairs, targets)  # capture
                stats_before = pool_mod.global_pool().stats()
                for _ in range(4):
                    assert compiled.step(pairs, targets) is not None
                stats_after = pool_mod.global_pool().stats()
            finally:
                compiled.close()
        # Replay thunks keep borrowing scratch buffers from the pool
        # (plan.sort scratch, kernel temporaries); with the plan's working
        # set pinned, those requests should be pool hits, not misses.
        hits = stats_after["hits"] - stats_before["hits"]
        misses = stats_after["misses"] - stats_before["misses"]
        assert hits > 0
        assert hits / max(hits + misses, 1) >= 0.5
