"""Order-log aggregation."""

import numpy as np
import pytest

from repro.data import OrderAggregates, TimePeriod


@pytest.fixture(scope="module")
def agg(sim):
    return OrderAggregates.from_orders(
        sim.orders, sim.land.num_regions, sim.config.num_store_types
    )


class TestCounts:
    def test_totals_consistent(self, agg, sim):
        assert agg.counts_sa.sum() == sim.num_orders
        assert agg.counts_sat.sum() == sim.num_orders
        assert agg.counts_uat.sum() == sim.num_orders

    def test_sat_marginalises_to_sa(self, agg):
        assert np.allclose(agg.counts_sat.sum(axis=2), agg.counts_sa)

    def test_manual_recount_one_cell(self, agg, sim):
        o = sim.orders[0]
        manual = sum(
            1
            for x in sim.orders
            if x.store_region == o.store_region and x.store_type == o.store_type
        )
        assert agg.counts_sa[o.store_region, o.store_type] == manual


class TestPairStats:
    def test_counts_match_orders(self, agg, sim):
        total = sum(
            stats.count for period in agg.pair_stats for stats in period.values()
        )
        assert total == sim.num_orders

    def test_mean_distance_positive(self, agg):
        for period_stats in agg.pair_stats:
            for stats in period_stats.values():
                assert stats.mean_distance > 0
                assert stats.mean_delivery > 0

    def test_empty_pairstats_zero_means(self):
        from repro.data import PairStats

        stats = PairStats()
        assert stats.mean_distance == 0.0
        assert stats.mean_delivery == 0.0


class TestDistanceStats:
    def test_farthest_ge_mean(self, agg):
        active = agg.total_orders_s > 0
        assert np.all(
            agg.farthest_distance[active] >= agg.mean_distance[active] - 1e-9
        )

    def test_inactive_zero(self, agg):
        inactive = agg.total_orders_s == 0
        assert np.all(agg.mean_distance[inactive] == 0)


class TestNodeSets:
    def test_store_regions_have_stores(self, agg, sim):
        counts = sim.store_type_counts()
        for r in agg.store_regions(counts):
            assert counts[r].sum() > 0

    def test_customer_regions_have_orders(self, agg):
        for r in agg.customer_regions():
            assert agg.counts_uat[r].sum() > 0


class TestMobilityEdges:
    def test_edges_match_pair_stats(self, agg):
        edges = agg.mobility_edges(TimePeriod.NOON_RUSH, min_count=1)
        assert len(edges) == len(agg.pair_stats[int(TimePeriod.NOON_RUSH)])

    def test_min_count_filters(self, agg):
        all_edges = agg.mobility_edges(TimePeriod.NOON_RUSH, min_count=1)
        filtered = agg.mobility_edges(TimePeriod.NOON_RUSH, min_count=3)
        assert len(filtered) <= len(all_edges)
        assert all(e[3] >= 3 for e in filtered)


class TestAdaptionFeatures:
    def test_neighborhood_preferences_superset(self, agg, sim):
        prefs = agg.neighborhood_preferences(sim.land.grid, radius_m=2000.0)
        own = agg.counts_uat.sum(axis=2)
        assert np.all(prefs >= own - 1e-9)

    def test_radius_zero_equals_own(self, agg, sim):
        prefs = agg.neighborhood_preferences(sim.land.grid, radius_m=1.0)
        own = agg.counts_uat.sum(axis=2)
        assert np.allclose(prefs, own)

    def test_filled_delivery_time_no_gaps(self, agg, sim):
        dt = agg.filled_region_delivery_time(sim.land.grid)
        assert np.all(dt > 0)
