"""Gradient correctness: every op against central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    Tensor,
    check_gradients,
    concat,
    gather_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    where,
)


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestBinaryGrads:
    def test_add_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), [t((3, 4)), t((4,), 1)])

    def test_sub(self):
        check_gradients(lambda a, b: (a - b).sum(), [t((2, 3)), t((2, 3), 1)])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: (a * b).sum(), [t((3, 4)), t((3, 1), 1)])

    def test_div(self):
        a, b = t((3,)), Tensor(np.array([2.0, 3.0, 4.0]), requires_grad=True)
        check_gradients(lambda a, b: (a / b).sum(), [a, b])

    def test_pow(self):
        x = Tensor(np.array([1.5, 2.0, 0.5]), requires_grad=True)
        check_gradients(lambda x: (x**3).sum(), [x])

    def test_neg(self):
        check_gradients(lambda a: (-a).sum(), [t((4,))])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4, 2), 1)])

    def test_matmul_vec_mat(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((4,)), t((4, 2), 1)])

    def test_matmul_mat_vec(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4,), 1)])

    def test_matmul_vec_vec(self):
        check_gradients(lambda a, b: a @ b, [t((5,)), t((5,), 1)])

    def test_matmul_batched(self):
        check_gradients(
            lambda a, b: (a @ b).sum(), [t((2, 3, 4)), t((2, 4, 2), 1)]
        )


class TestElementwiseGrads:
    def test_exp(self):
        check_gradients(lambda a: a.exp().sum(), [t((3, 3), scale=0.5)])

    def test_log(self):
        x = Tensor(np.array([0.5, 1.0, 2.0]), requires_grad=True)
        check_gradients(lambda x: x.log().sum(), [x])

    def test_sigmoid_tanh(self):
        check_gradients(lambda a: a.sigmoid().sum(), [t((4,))])
        check_gradients(lambda a: a.tanh().sum(), [t((4,), 1)])

    def test_relu_away_from_kink(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        check_gradients(lambda x: x.relu().sum(), [x])

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        check_gradients(lambda x: x.leaky_relu(0.2).sum(), [x])

    def test_abs_away_from_zero(self):
        x = Tensor(np.array([-2.0, 1.0]), requires_grad=True)
        check_gradients(lambda x: x.abs().sum(), [x])


class TestReductionGrads:
    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0).sum(), [t((3, 4))])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True).sum(), [t((3, 4))])

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [t((3, 4))])
        check_gradients(lambda a: a.mean(axis=1).sum(), [t((3, 4))])

    def test_max_no_ties(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]), requires_grad=True)
        check_gradients(lambda x: x.max(axis=1).sum(), [x])

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        out = x.max()
        out.backward()
        assert np.allclose(x.grad, [0.5, 0.5])


class TestShapeGrads:
    def test_reshape_transpose(self):
        check_gradients(
            lambda a: a.reshape(4, 6).transpose().sum(axis=1).sum(), [t((2, 3, 4))]
        )

    def test_expand_squeeze(self):
        check_gradients(lambda a: a.expand_dims(1).squeeze(1).sum(), [t((3,))])

    def test_getitem_with_repeats(self):
        check_gradients(lambda a: a[np.array([0, 1, 1, 2])].sum(), [t((3, 2))])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[:, 1:].sum(), [t((3, 4))])


class TestFunctionalGrads:
    def test_concat(self):
        check_gradients(
            lambda a, b: concat([a, b], axis=1).sum(), [t((2, 3)), t((2, 2), 1)]
        )

    def test_stack(self):
        check_gradients(lambda a, b: stack([a, b]).sum(), [t((3,)), t((3,), 1)])

    def test_gather_rows(self):
        check_gradients(
            lambda a: gather_rows(a, np.array([2, 0, 2, 1])).sum(), [t((3, 2))]
        )

    def test_segment_sum_mean(self):
        ids = np.array([0, 0, 2, 2, 2])
        check_gradients(lambda a: segment_sum(a, ids, 3).sum(), [t((5, 2))])
        check_gradients(lambda a: segment_mean(a, ids, 3).sum(), [t((5, 2))])

    def test_segment_softmax_weighted(self):
        ids = np.array([0, 0, 1, 1, 1])
        w = Tensor(np.arange(5.0))
        check_gradients(
            lambda s: (segment_softmax(s, ids, 2) * w).sum(), [t((5,))], atol=1e-4
        )

    def test_segment_softmax_multihead(self):
        ids = np.array([0, 0, 1])
        w = Tensor(np.arange(6.0).reshape(3, 2))
        check_gradients(
            lambda s: (segment_softmax(s, ids, 2) * w).sum(),
            [t((3, 2))],
            atol=1e-4,
        )

    def test_softmax(self):
        w = Tensor(np.arange(12.0).reshape(3, 4))
        check_gradients(lambda a: (softmax(a) * w).sum(), [t((3, 4))], atol=1e-4)

    def test_where(self):
        x = t((4,))
        cond = x.data > 0
        check_gradients(lambda a: where(cond, a * 2, a * 0.5).sum(), [x])


class TestBackwardSemantics:
    def test_gradient_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        assert np.allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # used twice below
        (y + y).backward()
        assert np.allclose(x.grad, [8.0])

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).backward()
        assert np.allclose(x.grad, [7.0])

    def test_seed_gradient_shape_check(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(4))

    def test_no_grad_for_constant(self):
        a = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (a * c).backward()
        assert c.grad is None

    def test_backward_does_not_leak_reference_cycles(self):
        # Closures must not capture their output tensor: a dropped graph is
        # reclaimed by refcounting (the training-loop performance fix).
        import gc
        import weakref

        x = Tensor(np.ones(10), requires_grad=True)
        out = (x * 2).relu().sum()
        ref = weakref.ref(out)
        gc.disable()
        try:
            del out
            assert ref() is None
        finally:
            gc.enable()


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(2, 5),
    cols=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_property_mlp_chain_gradients(rows, cols, seed):
    """Random small matmul/sigmoid chains always pass the gradient check."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    w = Tensor(rng.normal(size=(cols, 3)), requires_grad=True)
    check_gradients(lambda a, w: (a @ w).sigmoid().sum(), [a, w])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 8),
    segments=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_property_segment_softmax_normalised(n, segments, seed):
    """Segment softmax always produces per-segment distributions."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, segments, size=n)
    out = segment_softmax(Tensor(rng.normal(size=n)), ids, segments)
    sums = np.zeros(segments)
    np.add.at(sums, ids, out.data)
    present = np.bincount(ids, minlength=segments) > 0
    assert np.allclose(sums[present], 1.0)
    assert np.all(out.data >= 0)


class TestReflectedOperatorGrads:
    def test_rsub_gradient(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (5.0 - x).sum().backward()
        assert np.allclose(x.grad, [-1.0, -1.0])

    def test_rtruediv_gradient(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (8.0 / x).sum().backward()
        assert np.allclose(x.grad, [-2.0, -0.5])

    def test_radd_rmul_gradients(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (2.0 + x).backward()
        (2.0 * x).backward()
        assert np.allclose(x.grad, [3.0])  # 1 + 2


class TestSqueezeTranspose:
    def test_squeeze_all_singletons(self):
        x = Tensor(np.zeros((1, 3, 1)), requires_grad=True)
        out = x.squeeze()
        assert out.shape == (3,)
        out.sum().backward()
        assert x.grad.shape == (1, 3, 1)

    def test_transpose_tuple_argument(self):
        x = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        assert x.transpose((2, 0, 1)).shape == (4, 2, 3)
