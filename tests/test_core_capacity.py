"""Courier capacity model (Section III-D)."""

import numpy as np
import pytest

from repro.core import CourierCapacityModel, geographic_weights
from repro.data import TimePeriod
from repro.graphs import CourierMobilityMultiGraph, RegionGeographicalGraph
from repro.nn import init
from repro.optim import Adam


@pytest.fixture(scope="module")
def geo(dataset):
    return RegionGeographicalGraph.from_grid(dataset.grid)


@pytest.fixture(scope="module")
def mobility(dataset):
    return CourierMobilityMultiGraph.from_aggregates(dataset.aggregates, min_count=2)


@pytest.fixture()
def model(geo):
    init.seed(0)
    return CourierCapacityModel(geo, embedding_dim=8, num_layers=2)


class TestGeographicWeights:
    def test_normalised_per_target(self, geo):
        w = geographic_weights(geo)
        sums = np.zeros(geo.num_regions)
        np.add.at(sums, geo.dst, w)
        present = np.bincount(geo.dst, minlength=geo.num_regions) > 0
        assert np.allclose(sums[present], 1.0)

    def test_default_prefers_near(self, geo):
        w = geographic_weights(geo, mode="softmax_neg_distance")
        # For one target with mixed 500/707 m neighbours, nearer ones weigh more.
        target = geo.dst[0]
        mask = geo.dst == target
        dists, weights = geo.distance[mask], w[mask]
        assert weights[np.argmin(dists)] > weights[np.argmax(dists)]

    def test_literal_prefers_far(self, geo):
        w = geographic_weights(geo, mode="literal")
        target = geo.dst[0]
        mask = geo.dst == target
        dists, weights = geo.distance[mask], w[mask]
        assert weights[np.argmax(dists)] > weights[np.argmin(dists)]

    def test_unknown_mode(self, geo):
        with pytest.raises(ValueError):
            geographic_weights(geo, mode="bogus")


class TestCapacityModel:
    def test_region_embeddings_shape(self, model, mobility):
        b = model.region_embeddings(mobility.subgraph(TimePeriod.NOON_RUSH))
        assert b.shape == (model.num_regions, model.embedding_dim)

    def test_edge_embedding_dim(self, model, mobility):
        b = model.region_embeddings(mobility.subgraph(TimePeriod.MORNING))
        em = model.edge_embeddings(b, np.array([0, 1]), np.array([2, 3]))
        assert em.shape == (2, model.edge_embedding_dim)
        assert model.edge_embedding_dim == 2 * model.embedding_dim

    def test_edge_embedding_order_is_dst_then_src(self, model, mobility):
        b = model.region_embeddings(mobility.subgraph(TimePeriod.MORNING))
        em = model.edge_embeddings(b, np.array([0]), np.array([1]))
        d = model.embedding_dim
        assert np.allclose(em.data[0, :d], b.data[1])
        assert np.allclose(em.data[0, d:], b.data[0])

    def test_reconstruction_loss_scalar(self, model, mobility):
        loss = model.reconstruction_loss(mobility.subgraph(TimePeriod.NOON_RUSH))
        assert loss.data.shape == ()
        assert float(loss.data) >= 0

    def test_loss_decreases_with_training(self, model, mobility):
        sg = mobility.subgraph(TimePeriod.NOON_RUSH)
        opt = Adam(model.parameters(), lr=1e-2)
        first = None
        for _ in range(40):
            opt.zero_grad()
            loss = model.reconstruction_loss(sg)
            loss.backward()
            opt.step()
            if first is None:
                first = float(loss.data)
        assert float(loss.data) < 0.7 * first

    def test_periods_give_different_embeddings(self, model, mobility):
        b1 = model.region_embeddings(mobility.subgraph(TimePeriod.NOON_RUSH))
        b2 = model.region_embeddings(mobility.subgraph(TimePeriod.AFTERNOON))
        assert not np.allclose(b1.data, b2.data)

    def test_empty_mobility_subgraph_ok(self, model):
        from repro.graphs.mobility import MobilitySubgraph

        empty = MobilitySubgraph(
            period=TimePeriod.NIGHT,
            src=np.zeros(0, dtype=np.int64),
            dst=np.zeros(0, dtype=np.int64),
            delivery_time=np.zeros(0),
            count=np.zeros(0, dtype=np.int64),
        )
        b = model.region_embeddings(empty)
        assert b.shape == (model.num_regions, model.embedding_dim)
        assert float(model.reconstruction_loss(empty).data) == 0.0

    def test_invalid_layers(self, geo):
        with pytest.raises(ValueError):
            CourierCapacityModel(geo, num_layers=0)

    def test_gradients_reach_embeddings(self, model, mobility):
        loss = model.reconstruction_loss(mobility.subgraph(TimePeriod.MORNING))
        loss.backward()
        assert model.region_embedding.weight.grad is not None
        assert model.attn_vector.grad is not None
