"""Ranking metrics, per-type evaluation and statistical tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    EvaluationResult,
    MultiRoundResult,
    dcg_at_k,
    evaluate_model,
    ndcg_at_k,
    paired_t_test,
    precision_at_k,
    rmse,
    significance_marker,
)


class TestDCG:
    def test_first_position_undiscounted(self):
        assert dcg_at_k(np.array([1.0]), 1) == pytest.approx(1.0)

    def test_discount_log2(self):
        assert dcg_at_k(np.array([0.0, 1.0]), 2) == pytest.approx(1 / np.log2(3))

    def test_k_truncates(self):
        rel = np.array([1.0, 1.0, 1.0])
        assert dcg_at_k(rel, 1) < dcg_at_k(rel, 3)

    def test_empty(self):
        assert dcg_at_k(np.array([]), 3) == 0.0


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        assert ndcg_at_k(rel, rel, 3) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        assert ndcg_at_k(-rel, rel, 3) < 1.0

    def test_all_zero_relevance(self):
        assert ndcg_at_k(np.array([1.0, 2.0]), np.zeros(2), 2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ndcg_at_k(np.zeros(2), np.zeros(3), 2)
        with pytest.raises(ValueError):
            ndcg_at_k(np.zeros(2), np.zeros(2), 0)
        with pytest.raises(ValueError):
            ndcg_at_k(np.zeros((2, 2)), np.zeros((2, 2)), 1)

    def test_better_ranking_scores_higher(self):
        rel = np.array([5.0, 4.0, 1.0, 0.0])
        good = np.array([10.0, 9.0, 1.0, 0.0])
        bad = np.array([0.0, 1.0, 9.0, 10.0])
        assert ndcg_at_k(good, rel, 3) > ndcg_at_k(bad, rel, 3)


class TestPrecision:
    def test_eq18_definition(self):
        # Top-2 predicted vs top-3 true.
        scores = np.array([9.0, 8.0, 1.0, 0.0, 2.0])
        relevance = np.array([5.0, 0.0, 4.0, 3.0, 1.0])
        # predicted top-2 = {0, 1}; true top-3 = {0, 2, 3} -> overlap 1.
        assert precision_at_k(scores, relevance, 2, top_n=3) == pytest.approx(0.5)

    def test_perfect(self):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        assert precision_at_k(rel, rel, 2, top_n=2) == 1.0

    def test_k_clamped_to_candidates(self):
        assert precision_at_k(np.ones(2), np.ones(2), 5, top_n=1) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(np.zeros(2), np.zeros(2), 0)


class TestRMSE:
    def test_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_zero_for_exact(self):
        x = np.array([1.0, 2.0])
        assert rmse(x, x) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            rmse(np.zeros(0), np.zeros(0))


class _OracleModel:
    """Predicts the ground truth (upper bound for every metric)."""

    def __init__(self, dataset):
        self.dataset = dataset

    def predict(self, pairs):
        return self.dataset.pair_targets(np.asarray(pairs))


class _NoiseModel:
    def predict(self, pairs):
        return np.random.default_rng(0).random(len(pairs))


class TestEvaluateModel:
    def test_oracle_scores_high(self, dataset, split):
        result = evaluate_model(_OracleModel(dataset), dataset, split, top_n=5)
        assert result["NDCG@3"] == pytest.approx(1.0)
        assert result["Precision@3"] >= 0.99

    def test_noise_scores_lower(self, dataset, split):
        oracle = evaluate_model(_OracleModel(dataset), dataset, split, top_n=5)
        noise = evaluate_model(_NoiseModel(), dataset, split, top_n=5)
        assert noise["NDCG@3"] < oracle["NDCG@3"]

    def test_per_type_populated(self, dataset, split):
        result = evaluate_model(_OracleModel(dataset), dataset, split)
        assert len(result.per_type) > 0
        assert result.as_row(["NDCG@3"]) == [result["NDCG@3"]]

    def test_type_filter(self, dataset, split):
        result = evaluate_model(_OracleModel(dataset), dataset, split, types=[0, 1])
        assert set(result.per_type) <= {0, 1}

    def test_region_filter_restricts_candidates(self, dataset, split):
        few_regions = dataset.store_regions[:3]
        with pytest.raises(ValueError):
            # With almost no candidate overlap, no type is evaluable.
            evaluate_model(
                _OracleModel(dataset),
                dataset,
                split,
                regions_filter=np.array([10**6]),
            )


class TestMultiRound:
    def make(self, values):
        return MultiRoundResult(
            [EvaluationResult(values={"NDCG@3": v}) for v in values]
        )

    def test_mean_std_series(self):
        r = self.make([0.5, 0.7])
        assert r.mean("NDCG@3") == pytest.approx(0.6)
        assert r.std("NDCG@3") == pytest.approx(0.1)
        assert np.allclose(r.series("NDCG@3"), [0.5, 0.7])

    def test_paired_t_test_detects_difference(self):
        ours = self.make([0.8, 0.82, 0.81, 0.83])
        theirs = self.make([0.6, 0.62, 0.61, 0.63])
        assert paired_t_test(ours, theirs, "NDCG@3") < 0.01

    def test_paired_t_test_identical_is_one(self):
        a = self.make([0.5, 0.5])
        assert paired_t_test(a, a, "NDCG@3") == 1.0

    def test_paired_t_test_single_round_nan(self):
        a, b = self.make([0.5]), self.make([0.6])
        assert np.isnan(paired_t_test(a, b, "NDCG@3"))

    def test_mismatched_rounds(self):
        with pytest.raises(ValueError):
            paired_t_test(self.make([0.5]), self.make([0.5, 0.6]), "NDCG@3")


class TestSignificanceMarker:
    @pytest.mark.parametrize(
        "p,marker",
        [(0.001, "**"), (0.03, "*"), (0.2, ""), (float("nan"), "")],
    )
    def test_markers(self, p, marker):
        assert significance_marker(p) == marker


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 20),
    k=st.integers(1, 5),
    seed=st.integers(0, 500),
)
def test_property_ndcg_bounded(n, k, seed):
    rng = np.random.default_rng(seed)
    scores = rng.random(n)
    relevance = rng.random(n)
    value = ndcg_at_k(scores, relevance, k)
    assert 0.0 <= value <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 20), k=st.integers(1, 5), seed=st.integers(0, 500))
def test_property_precision_bounded(n, k, seed):
    rng = np.random.default_rng(seed)
    value = precision_at_k(rng.random(n), rng.random(n), k, top_n=max(1, n // 2))
    assert 0.0 <= value <= 1.0
