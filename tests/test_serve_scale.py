"""The scale-out serving plane: arena snapshots, worker pool, partial top-k.

Pins the PR's three layers against their reference implementations:

* the ``.arena`` container round-trips a snapshot bit-for-bit (scores,
  fingerprint, metadata) and loads interchangeably with ``.npz``;
* ``top_k_indices``/``top_k_mask`` match the stable full argsort exactly,
  duplicate-score ties included, and the bulk metrics kernel matches the
  per-k metric calls float-for-float;
* ``WorkerPool`` serves over N processes with correct shared-memory stats
  aggregation and atomic fleet-wide hot swap -- every response observed
  during a swap matches the old snapshot or the new one, never a blend.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig
from repro.metrics import (
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    ranking_metrics_bulk,
    recall_at_k,
)
from repro.nn import init
from repro.serve import (
    ModelSnapshot,
    RecommendationService,
    ServiceMetrics,
    SharedServiceStats,
    convert_snapshot,
    is_arena_file,
    open_arena,
    read_manifest,
    serve_http,
    write_manifest,
)
from repro.serve.__main__ import main as serve_main
from repro.serve.workers import WorkerPool, _WorkerSink
from repro.topk import top_k_indices, top_k_mask


@pytest.fixture(scope="module")
def snapshots(micro_dataset, micro_split):
    """Two snapshots with different weights (for hot-swap tests)."""
    init.seed(4)
    model_a = O2SiteRec(
        micro_dataset,
        micro_split,
        O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
    )
    init.seed(9)
    model_b = O2SiteRec(
        micro_dataset,
        micro_split,
        O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
    )
    return ModelSnapshot.from_model(model_a), ModelSnapshot.from_model(model_b)


@pytest.fixture(scope="module")
def snapshot(snapshots):
    return snapshots[0]


def _all_pairs(snapshot):
    regions = snapshot.candidate_regions()
    return np.stack(
        [
            np.tile(regions, snapshot.num_types),
            np.repeat(
                np.arange(snapshot.num_types, dtype=np.int64), len(regions)
            ),
        ],
        axis=1,
    )


# ----------------------------------------------------------------------
# Arena container
# ----------------------------------------------------------------------
class TestArena:
    def test_round_trip_bit_for_bit(self, snapshot, tmp_path):
        npz_path = snapshot.save(tmp_path / "snap.npz")
        arena_path = snapshot.save(tmp_path / "snap.arena", format="arena")
        assert is_arena_file(arena_path)
        assert not is_arena_file(npz_path)

        from_npz = ModelSnapshot.load(npz_path)
        from_arena = ModelSnapshot.load(arena_path)
        pairs = _all_pairs(snapshot)
        assert np.array_equal(from_npz.predict(pairs), from_arena.predict(pairs))
        assert np.array_equal(snapshot.predict(pairs), from_arena.predict(pairs))
        # Fingerprint and metadata survive the format change.
        assert from_arena.snapshot_id == from_npz.snapshot_id == snapshot.snapshot_id
        assert from_arena.type_names == from_npz.type_names
        assert from_arena.target_scale == from_npz.target_scale
        assert from_arena.num_periods == from_npz.num_periods
        assert from_arena.embedding_dim == from_npz.embedding_dim

    def test_open_is_zero_copy(self, snapshot, tmp_path):
        path = snapshot.save(tmp_path / "snap.arena", format="arena")
        loaded = open_arena(path)
        assert isinstance(loaded.h, np.memmap) or not loaded.h.flags["OWNDATA"]

    def test_verify_checks_fingerprint(self, snapshot, tmp_path):
        path = snapshot.save(tmp_path / "snap.arena", format="arena")
        open_arena(path, verify=True)  # must not raise

    def test_truncated_arena_rejected(self, snapshot, tmp_path):
        path = snapshot.save(tmp_path / "snap.arena", format="arena")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(ValueError, match="truncated"):
            ModelSnapshot.load(path)

    def test_suffixless_load_resolves_arena(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "snap.arena", format="arena")
        loaded = ModelSnapshot.load(tmp_path / "snap")
        assert loaded.snapshot_id == snapshot.snapshot_id

    def test_convert_snapshot(self, snapshot, tmp_path):
        npz_path = snapshot.save(tmp_path / "snap.npz")
        arena_path = convert_snapshot(npz_path, verify=True)
        assert arena_path == tmp_path / "snap.arena"
        converted = ModelSnapshot.load(arena_path)
        pairs = _all_pairs(snapshot)
        assert np.array_equal(snapshot.predict(pairs), converted.predict(pairs))

    def test_convert_cli(self, snapshot, tmp_path, capsys):
        npz_path = snapshot.save(tmp_path / "snap.npz")
        dest = tmp_path / "migrated.arena"
        assert serve_main(["convert", str(npz_path), str(dest)]) == 0
        assert "wrote arena" in capsys.readouterr().out
        assert ModelSnapshot.load(dest).snapshot_id == snapshot.snapshot_id

    def test_export_snapshot_format_flag(self, snapshot, tmp_path, capsys):
        src = snapshot.save(tmp_path / "snap.npz")
        # Round-trip through the CLI export path in arena format.
        out = tmp_path / "exported.arena"
        code = serve_main(
            [
                "--snapshot", str(src),
                "--export-snapshot", str(out),
                "--snapshot-format", "arena",
            ]
        )
        assert code == 0
        assert is_arena_file(out)


# ----------------------------------------------------------------------
# Partial-sort top-k
# ----------------------------------------------------------------------
class TestTopK:
    def _reference(self, scores, k):
        return np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")[:k]

    @pytest.mark.parametrize("k", [1, 2, 5, 31, 32, 40])
    def test_matches_stable_argsort(self, rng, k):
        scores = rng.normal(size=32)
        assert np.array_equal(
            top_k_indices(scores, k), self._reference(scores, k)
        )

    @pytest.mark.parametrize(
        "scores",
        [
            np.zeros(16),  # all tied
            np.array([1.0, 1.0, 0.5, 1.0, 0.5, 0.25] * 4),  # heavy duplicates
            np.array([3.0, -1.0, 3.0, 3.0, 2.0]),
            np.array([np.nan, 1.0, 2.0, np.nan]),  # NaN falls back to full sort
            np.array([np.inf, -np.inf, 0.0, np.inf]),
        ],
    )
    def test_tie_break_identical(self, scores):
        for k in range(1, len(scores) + 1):
            assert np.array_equal(
                top_k_indices(scores, k), self._reference(scores, k)
            ), f"k={k}"

    def test_fuzz_ties(self, rng):
        for _ in range(300):
            n = int(rng.integers(1, 40))
            # Coarse quantisation forces duplicate scores.
            scores = np.round(rng.normal(size=n), 1)
            k = int(rng.integers(1, n + 1))
            assert np.array_equal(
                top_k_indices(scores, k), self._reference(scores, k)
            )

    def test_mask_matches_indices(self, rng):
        for _ in range(100):
            n = int(rng.integers(1, 30))
            scores = np.round(rng.normal(size=n), 1)
            k = int(rng.integers(1, n + 1))
            mask = top_k_mask(scores, k)
            expected = np.zeros(n, dtype=bool)
            expected[self._reference(scores, k)] = True
            assert np.array_equal(mask, expected)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_indices(np.arange(4.0), 0)
        with pytest.raises(ValueError):
            top_k_mask(np.arange(4.0), 0)


class TestBulkMetrics:
    def test_matches_per_k_calls(self, rng):
        for _ in range(50):
            n = int(rng.integers(3, 60))
            scores = np.round(rng.normal(size=n), 1)
            relevance = np.round(rng.exponential(size=n) * 5, 0)
            top_n = int(rng.integers(1, n + 1))
            ks = [1, 3, 5, 10]
            bulk = ranking_metrics_bulk(scores, relevance, ks, top_n=top_n)
            for k in ks:
                # Float-for-float: the bulk kernel shares the sorts but
                # must reproduce each metric's exact summation order.
                assert bulk[f"NDCG@{k}"] == ndcg_at_k(scores, relevance, k)
                assert bulk[f"Precision@{k}"] == precision_at_k(
                    scores, relevance, k, top_n=top_n
                )

    def test_per_k_functions_match_recall_and_hit(self, rng):
        # The mask-based rewrites of recall/hit-rate stay consistent with
        # precision on the same inputs.
        scores = np.round(rng.normal(size=25), 1)
        relevance = np.round(rng.exponential(size=25) * 3, 0)
        p = precision_at_k(scores, relevance, 5, top_n=10)
        r = recall_at_k(scores, relevance, 5, top_n=10)
        assert p * 5 == r * 10  # same hit count, different denominators
        best = int(np.argmax(relevance))
        in_top = best in np.argsort(-scores, kind="stable")[:5]
        assert hit_rate_at_k(scores, relevance, 5) == float(in_top)

    def test_evaluate_model_matches_loop(self, micro_dataset, micro_split):
        from repro.metrics.evaluation import evaluate_model
        from repro.metrics.ranking import rmse

        init.seed(4)
        model = O2SiteRec(
            micro_dataset,
            micro_split,
            O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
        )
        result = evaluate_model(
            model, micro_dataset, micro_split, top_n_frac=0.4
        )
        # Reference: the pre-vectorisation per-pair loop over the public
        # per-k metric functions.
        for a, row in result.per_type.items():
            candidates = micro_split.test_regions_for_type(a)
            pairs = np.stack(
                [candidates, np.full(len(candidates), a, dtype=np.int64)],
                axis=1,
            )
            scores = np.asarray(model.predict(pairs), dtype=np.float64)
            relevance = micro_dataset.pair_targets(pairs)
            top_n = max(3, int(round(0.4 * len(pairs))))
            expected = {}
            for k in (3, 5, 10):
                expected[f"NDCG@{k}"] = ndcg_at_k(scores, relevance, k)
                expected[f"Precision@{k}"] = precision_at_k(
                    scores, relevance, k, top_n=top_n
                )
            expected["RMSE"] = rmse(scores, relevance)
            assert row == expected  # exact, not approx


# ----------------------------------------------------------------------
# Shared-memory stats
# ----------------------------------------------------------------------
class TestSharedStats:
    def test_counters_and_histograms_aggregate(self):
        shared = SharedServiceStats(num_workers=2)
        sink_a = _WorkerSink(shared, 0)
        sink_b = _WorkerSink(shared, 1)
        for _ in range(3):
            sink_a.increment("queries")
        sink_b.increment("queries", 2)
        sink_a.increment("cache_hits", 5)
        sink_b.observe("total", 0.010)
        sink_a.observe("total", 0.0001)
        sink_a.increment("not_a_fleet_counter")  # silently ignored
        sink_a.observe("not_a_stage", 1.0)

        report = shared.aggregate()
        assert report["counters"]["queries"] == 5
        assert report["counters"]["cache_hits"] == 5
        assert report["per_worker_queries"] == [3, 2]
        total = report["latency"]["total"]
        assert total["count"] == 2
        assert total["p99_ms"] >= total["p50_ms"] > 0.0

    def test_service_metrics_mirror_to_sink(self):
        shared = SharedServiceStats(num_workers=1)
        metrics = ServiceMetrics(sink=_WorkerSink(shared, 0))
        metrics.increment("queries")
        metrics.observe("total", 0.002)
        # Local view and fleet view agree.
        assert metrics.counter("queries") == 1
        assert shared.counter("queries") == 1
        assert shared.aggregate()["latency"]["total"]["count"] == 1

    def test_manifest_round_trip(self, tmp_path):
        manifest = tmp_path / "deploy.json"
        assert write_manifest(manifest, "a.arena") == 1
        assert read_manifest(manifest) == (1, "a.arena")
        assert write_manifest(manifest, "b.arena") == 2
        assert read_manifest(manifest) == (2, "b.arena")
        assert write_manifest(manifest, "c.arena", version=10) == 10
        assert read_manifest(manifest) == (10, "c.arena")


# ----------------------------------------------------------------------
# HTTP keep-alive
# ----------------------------------------------------------------------
class TestKeepAlive:
    def test_two_requests_one_connection(self, snapshot):
        with RecommendationService(snapshot) as service:
            server = serve_http(service, port=0)
            port = server.server_address[1]
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
                first = conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                assert response.version == 11
                # Same socket must survive for a second exchange.
                sock = conn.sock
                assert sock is not None
                conn.request("GET", "/recommend?type=1&k=2")
                response = conn.getresponse()
                assert response.status == 200
                assert len(json.loads(response.read())) == 2
                assert conn.sock is sock
                conn.close()
            finally:
                server.shutdown()
                server.server_close()


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def _get(port, path, timeout=15):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        assert response.status == 200, body
        return json.loads(body)
    finally:
        conn.close()


class TestWorkerPool:
    def test_serves_and_aggregates_stats(self, snapshot, tmp_path):
        path = snapshot.save(tmp_path / "snap.arena", format="arena")
        with WorkerPool(path, procs=2) as pool:
            assert _get(pool.port, "/healthz") == {"status": "ok"}
            for _ in range(8):
                results = _get(pool.port, "/recommend?type=1&k=2")
                assert len(results) == 2
            stats = pool.stats()
            assert stats["procs"] == 2
            assert stats["counters"]["queries"] == 8
            assert sum(stats["per_worker_queries"]) == 8
            assert len(stats["pids"]) == 2
            assert all(stats["alive"])
            assert stats["latency"]["total"]["count"] == 8
        # Stopped cleanly: processes are gone.
        assert not any(worker.is_alive() for worker in pool._workers)

    def test_inherited_socket_fallback(self, snapshot, tmp_path, monkeypatch):
        from repro.serve import workers as workers_mod

        monkeypatch.setattr(workers_mod, "reuseport_available", lambda: False)
        path = snapshot.save(tmp_path / "snap.arena", format="arena")
        with WorkerPool(path, procs=2) as pool:
            for _ in range(4):
                assert len(_get(pool.port, "/recommend?type=0&k=1")) == 1
            assert pool.stats()["counters"]["queries"] == 4

    def test_hot_swap_under_concurrent_queries(self, snapshots, tmp_path):
        old_snapshot, new_snapshot = snapshots
        old_path = old_snapshot.save(tmp_path / "old.arena", format="arena")
        new_path = new_snapshot.save(tmp_path / "new.arena", format="arena")

        # Ground truth score vectors for one fixed query, per snapshot.
        regions = old_snapshot.candidate_regions()[:6]
        query = "/recommend?type=1&k=6&candidates=" + ",".join(
            str(int(r)) for r in regions
        )
        with RecommendationService(old_snapshot) as svc:
            expect_old = [rec.score for rec in svc.query(1, regions, k=6)]
        with RecommendationService(new_snapshot) as svc:
            expect_new = [rec.score for rec in svc.query(1, regions, k=6)]
        assert expect_old != expect_new  # the swap must be observable

        manifest = tmp_path / "deploy.json"
        observed = []
        torn = []
        stop = threading.Event()

        with WorkerPool(
            old_path, procs=2, manifest_path=manifest, poll_interval_s=0.05
        ) as pool:

            def hammer():
                while not stop.is_set():
                    scores = [r["score"] for r in _get(pool.port, query)]
                    observed.append(tuple(scores))
                    # Atomicity pin: every response is exactly one
                    # snapshot's ranking, never a mixture.
                    if scores != expect_old and scores != expect_new:
                        torn.append(scores)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.3)
                version = pool.reload(new_path)
                assert version == 1
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if pool.shared.counter("reloads") >= 2:
                        break
                    time.sleep(0.05)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=20)

            stats = pool.stats()
            assert stats["counters"]["reloads"] == 2  # every worker cut over
            assert stats["counters"]["reload_errors"] == 0
            assert stats["manifest"] == {
                "version": 1,
                "snapshot": str(new_path),
            }
            # After the fleet-wide swap the new ranking is served.
            assert [r["score"] for r in _get(pool.port, query)] == expect_new

        assert not torn, f"torn reads: {torn[:3]}"
        assert tuple(expect_old) in observed  # traffic ran before the swap
