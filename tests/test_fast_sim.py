"""The vectorised simulation path must be bit-for-bit the reference.

``O2_FAST_SIM=1`` is a *reformulation* of the order generator and
dispatcher, not an approximation: every test here asserts exact equality
of the emitted records, not closeness.  The RNG-equivalence pins at the
bottom document the numpy stream identities the columnar rewrite leans
on -- if a numpy upgrade ever breaks one of them, these fail first and
point at the exact identity that changed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.city import CityConfig
from repro.city.couriers import build_fleet
from repro.city.fastsim import fast_sim_enabled, set_fast_sim, use_fast_sim
from repro.city.landuse import synthesize_land_use
from repro.city.simulator import (
    simulate_uncached,
    simulation_config,
)
from repro.data.periods import NUM_PERIODS, TimePeriod


def _tiny_config(**overrides) -> CityConfig:
    base = dict(
        rows=7, cols=7, num_days=4, num_couriers=60, seed=3,
        base_population=2200.0,
    )
    base.update(overrides)
    return CityConfig(**base)


def _run_both(config: CityConfig):
    with use_fast_sim(False):
        ref = simulate_uncached(config)
    with use_fast_sim(True):
        fast = simulate_uncached(config)
    return ref, fast


def test_flag_toggling():
    previous = set_fast_sim(True)
    try:
        assert fast_sim_enabled()
        with use_fast_sim(False):
            assert not fast_sim_enabled()
        assert fast_sim_enabled()
    finally:
        set_fast_sim(previous)


def test_formula_mode_records_identical():
    ref, fast = _run_both(_tiny_config())
    assert len(ref.orders) > 0
    assert ref.orders == fast.orders


def test_agents_dispatch_records_identical():
    ref, fast = _run_both(_tiny_config(dispatch_mode="agents"))
    assert len(ref.orders) > 0
    assert ref.orders == fast.orders


def test_observation_noise_records_identical():
    # The sim preset's distinguishing knobs: recorded-time noise plus
    # customer re-synthesis happen on separate RNG streams; cover the
    # noisy generator branch here.
    config = _tiny_config(observation_noise=0.35, demand_noise=0.5)
    ref, fast = _run_both(config)
    assert len(ref.orders) > 0
    assert ref.orders == fast.orders


def test_simulation_preset_identical(monkeypatch):
    # simulation_dataset() routes through simulate() (cache-aware): turn
    # the cache off so both runs genuinely re-simulate.
    monkeypatch.setenv("O2_PIPELINE_CACHE", "0")
    from repro.city.simulator import simulation_dataset

    config = simulation_config(seed=11, scale=0.4)
    assert config.observation_noise > 0  # the branch worth covering
    with use_fast_sim(False):
        ref = simulation_dataset(seed=11, scale=0.4)
    with use_fast_sim(True):
        fast = simulation_dataset(seed=11, scale=0.4)
    assert ref.orders == fast.orders


def test_congestion_and_scope_matrices_match_reference():
    config = _tiny_config()
    rng = np.random.default_rng(config.seed)
    land = synthesize_land_use(config, rng)
    fleet = build_fleet(config, land, rng)

    with use_fast_sim(True):
        congestion = fleet.congestion_matrix()
        scope = fleet.scope_matrix()
    reference_congestion = np.array(
        [
            [fleet.congestion(r, TimePeriod(t)) for t in range(NUM_PERIODS)]
            for r in range(land.num_regions)
        ]
    )
    reference_scope = np.array(
        [
            [fleet.delivery_scope_m(r, TimePeriod(t)) for t in range(NUM_PERIODS)]
            for r in range(land.num_regions)
        ]
    )
    np.testing.assert_array_equal(congestion, reference_congestion)
    np.testing.assert_array_equal(scope, reference_scope)


# ---------------------------------------------------------------------------
# RNG stream identities the fast path relies on (bitwise, not approximate).
# ---------------------------------------------------------------------------

def test_pin_choice_equals_cdf_searchsorted():
    probs = np.random.default_rng(0).random(37)
    probs /= probs.sum()
    candidates = np.arange(100, 137)

    a = np.random.default_rng(7).choice(candidates, size=25, p=probs)
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    draws = np.random.default_rng(7).random(25)
    b = candidates[cdf.searchsorted(draws, side="right")]
    np.testing.assert_array_equal(a, b)


def test_pin_vector_random_equals_scalar_stream():
    a = np.random.default_rng(5).random(64)
    rng = np.random.default_rng(5)
    b = np.array([rng.random() for _ in range(64)])
    np.testing.assert_array_equal(a, b)


def test_pin_normal_equals_scaled_standard_normal():
    sigma = 0.35 * 17.25
    a = np.random.default_rng(9).normal(0.0, sigma)
    b = sigma * np.random.default_rng(9).standard_normal()
    assert a == b


def test_pin_scalar_vs_array_elementwise_math():
    values = np.random.default_rng(3).random(50) * 4 - 2
    for fn in (np.exp, np.cos, np.sin):
        vector = fn(values)
        scalars = np.array([float(fn(v)) for v in values])
        np.testing.assert_array_equal(vector, scalars)
    xs, ys = values[:25], values[25:]
    np.testing.assert_array_equal(
        np.hypot(xs, ys), np.array([float(np.hypot(x, y)) for x, y in zip(xs, ys)])
    )
