"""Fast-path kernels: SegmentPlan, fused ops, C kernels, path equivalence.

Three layers of guarantees, matching what the fast path promises:

* the SegmentPlan reductions are drop-in replacements for the
  ``np.add.at`` / ``np.maximum.at`` scatters (empty segments, repeated
  indices, presorted and unsorted ids);
* the fused autograd nodes (``edge_message``, ``segment_attention``,
  ``period_attention``) match the composed reference chains to 1e-9 in the
  forward and pass a central-difference gradient check -- with the compiled
  C kernels both on and off;
* whole-model predictions and training-loss curves agree between the
  reference path and every fast configuration (threaded, batched, factored
  capacity), with threaded-vs-serial bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.nn import FactoredEdgeAttr, MultiHeadSegmentAttention, init
from repro.parallel import use_num_threads
from repro.tensor import (
    Tensor,
    concat,
    cnative,
    edge_message,
    gather_rows,
    period_attention,
    segment_attention,
    segment_softmax,
    segment_sum,
    use_fast_kernels,
)
from repro.tensor.segment import get_plan


C_MODES = [False, True] if cnative.available() else [False]


@pytest.fixture(params=C_MODES, ids=lambda c: "c" if c else "numpy")
def c_kernels(request):
    """Run a test under both kernel backends where C is available."""
    previous = cnative.set_c_kernels(request.param)
    yield request.param
    cnative.set_c_kernels(previous)


def numeric_grad(fn, value, h=1e-6):
    """Central-difference gradient of scalar ``fn`` w.r.t. ``value``."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        keep = flat[i]
        flat[i] = keep + h
        hi = fn()
        flat[i] = keep - h
        lo = fn()
        flat[i] = keep
        gflat[i] = (hi - lo) / (2 * h)
    return grad


class TestSegmentPlan:
    @pytest.mark.parametrize("presorted", [True, False])
    def test_sum_matches_add_at(self, rng, presorted):
        ids = rng.integers(0, 9, 40).astype(np.int64)
        ids[ids == 3] = 4  # segment 3 stays empty
        ids[:5] = 7  # repeated indices
        if presorted:
            ids = np.sort(ids)
        values = rng.standard_normal((40, 6))
        expected = np.zeros((9, 6))
        np.add.at(expected, ids, values)
        np.testing.assert_allclose(
            get_plan(ids, 9).sum(values), expected, atol=1e-12
        )

    def test_max_matches_maximum_at(self, rng):
        ids = rng.integers(0, 7, 30).astype(np.int64)
        ids[ids == 2] = 5
        scores = rng.standard_normal((30, 3))
        expected = np.full((7, 3), -np.inf)
        np.maximum.at(expected, ids, scores)
        np.testing.assert_array_equal(
            get_plan(ids, 7).max(scores), expected
        )

    def test_plan_cached_by_identity(self):
        ids = np.array([0, 0, 2, 2, 2], dtype=np.int64)
        assert get_plan(ids, 3) is get_plan(ids, 3)
        assert get_plan(ids.copy(), 3) is not get_plan(ids, 3)


class TestEdgeMessage:
    def _reference(self, pre, eproj, bias, src, extra=()):
        buf = pre.data[src]
        for values, idx in extra:
            buf = buf + values.data[idx]
        if eproj is not None:
            buf = buf + eproj.data
        return np.maximum(buf + bias.data, 0.0)

    def test_forward_matches_reference(self, rng, c_kernels):
        src = rng.integers(0, 5, 12).astype(np.int64)
        pre = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        eproj = Tensor(rng.standard_normal((12, 4)), requires_grad=True)
        bias = Tensor(rng.standard_normal(4), requires_grad=True)
        out = edge_message(pre, eproj, bias, src)
        np.testing.assert_allclose(
            out.data, self._reference(pre, eproj, bias, src), atol=1e-9
        )

    def test_gradients(self, rng, c_kernels):
        src = np.array([0, 2, 2, 1, 0, 2, 4, 3], dtype=np.int64)  # 2 repeats
        pre = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        eproj = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        bias = Tensor(rng.standard_normal(3), requires_grad=True)
        probe = rng.standard_normal((8, 3))

        out = edge_message(pre, eproj, bias, src)
        (out * Tensor(probe)).sum().backward()

        for tensor in (pre, eproj, bias):
            def value():
                return float(
                    (self._reference(pre, eproj, bias, src) * probe).sum()
                )

            np.testing.assert_allclose(
                tensor.grad, numeric_grad(value, tensor.data), atol=1e-5
            )

    def test_factored_extras_match_dense(self, rng, c_kernels):
        """Two gathered blocks == the dense concat they factor."""
        src = rng.integers(0, 4, 10).astype(np.int64)
        i0 = rng.integers(0, 6, 10).astype(np.int64)
        i1 = rng.integers(0, 6, 10).astype(np.int64)
        pre = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        table = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        bias = Tensor(rng.standard_normal(3), requires_grad=True)

        out = edge_message(pre, None, bias, src, extra=[(table, i0), (table, i1)])
        dense = edge_message(
            pre, gather_rows(table, i0) + gather_rows(table, i1), bias, src
        )
        np.testing.assert_allclose(out.data, dense.data, atol=1e-9)

        probe = rng.standard_normal((10, 3))
        (out * Tensor(probe)).sum().backward()
        got = {t: t.grad.copy() for t in (pre, table, bias)}
        for t in (pre, table, bias):
            t.grad = None
        (dense * Tensor(probe)).sum().backward()
        for t in (pre, table, bias):
            np.testing.assert_allclose(got[t], t.grad, atol=1e-9)


class TestSegmentAttention:
    H, HD = 3, 4

    def _inputs(self, rng, num_edges=14, num_nodes=6, empty=True):
        ids = np.sort(rng.integers(0, num_nodes, num_edges)).astype(np.int64)
        if empty:
            ids[ids == 1] = 2  # leave segment 1 with no edges
        dim = self.H * self.HD
        fused = Tensor(rng.standard_normal((num_edges, dim)), requires_grad=True)
        key_w = Tensor(rng.standard_normal((dim, dim)) * 0.3, requires_grad=True)
        queries = Tensor(
            rng.standard_normal((num_nodes, self.H, self.HD)), requires_grad=True
        )
        return fused, key_w, queries, ids, num_nodes

    def _reference(self, fused, key_w, queries, ids, num_nodes, scale):
        """The composed 10-node chain the fused kernel replaces."""
        num_edges, dim = fused.shape
        keys = (fused @ key_w).reshape(num_edges, self.H, self.HD)
        q_edge = gather_rows(
            queries.reshape(num_nodes, dim), ids
        ).reshape(num_edges, self.H, self.HD)
        # (E, H) per-head scores.
        scores = ((keys * q_edge).sum(axis=2) * scale).leaky_relu(0.2)
        weights = segment_softmax(scores, ids, num_nodes)
        weighted = (keys * weights.expand_dims(2)).reshape(num_edges, dim)
        return segment_sum(weighted, ids, num_nodes).relu()

    @pytest.mark.parametrize("presorted", [True, False])
    def test_forward_matches_reference(self, rng, c_kernels, presorted):
        fused, key_w, queries, ids, n = self._inputs(rng)
        if not presorted:
            ids = rng.permutation(ids)
        scale = 1.0 / np.sqrt(self.HD)
        out = segment_attention(fused, key_w, queries, ids, n, scale)
        ref = self._reference(fused, key_w, queries, ids, n, scale)
        assert out.shape == (n, self.H * self.HD)
        np.testing.assert_allclose(out.data, ref.data, atol=1e-9)
        assert np.all(out.data[1] == 0.0)  # the empty segment

    def test_gradients_match_reference(self, rng, c_kernels):
        fused, key_w, queries, ids, n = self._inputs(rng)
        scale = 1.0 / np.sqrt(self.HD)
        probe = rng.standard_normal((n, self.H * self.HD))

        out = segment_attention(fused, key_w, queries, ids, n, scale)
        (out * Tensor(probe)).sum().backward()
        got = {t: t.grad.copy() for t in (fused, key_w, queries)}
        for t in (fused, key_w, queries):
            t.grad = None
        ref = self._reference(fused, key_w, queries, ids, n, scale)
        (ref * Tensor(probe)).sum().backward()
        for t in (fused, key_w, queries):
            np.testing.assert_allclose(got[t], t.grad, atol=1e-9)

    def test_numeric_grad(self, rng, c_kernels):
        fused, key_w, queries, ids, n = self._inputs(rng, num_edges=8, num_nodes=4)
        scale = 1.0 / np.sqrt(self.HD)
        probe = rng.standard_normal((n, self.H * self.HD))

        out = segment_attention(fused, key_w, queries, ids, n, scale)
        (out * Tensor(probe)).sum().backward()

        for tensor in (fused, key_w, queries):
            def value():
                out = segment_attention(fused, key_w, queries, ids, n, scale)
                return float((out.data * probe).sum())

            np.testing.assert_allclose(
                tensor.grad, numeric_grad(value, tensor.data), atol=1e-5
            )


class TestPeriodAttentionOp:
    def test_numeric_grad(self, rng):
        periods, k, heads, dim = 3, 4, 2, 6
        flat = Tensor(rng.standard_normal((periods * k, dim)), requires_grad=True)
        wk = Tensor(rng.standard_normal((dim, dim)) * 0.3, requires_grad=True)
        wq = Tensor(rng.standard_normal((dim, dim)) * 0.3, requires_grad=True)
        scale = 1.0 / np.sqrt(dim // heads)
        probe = rng.standard_normal((k, dim))

        out, weights = period_attention(flat, wk, wq, periods, heads, scale)
        assert weights.shape == (periods, k, heads)
        np.testing.assert_allclose(weights.sum(axis=0), 1.0, atol=1e-12)
        (out * Tensor(probe)).sum().backward()

        for tensor in (flat, wk, wq):
            def value():
                out, _ = period_attention(flat, wk, wq, periods, heads, scale)
                return float((out.data * probe).sum())

            np.testing.assert_allclose(
                tensor.grad, numeric_grad(value, tensor.data), atol=1e-5
            )


class TestFactoredEdgeAttr:
    def test_aggregator_matches_dense_attr(self, rng, c_kernels):
        init.seed(0)
        module = MultiHeadSegmentAttention(
            query_dim=6, source_dim=6, edge_dim=8, num_heads=2, head_dim=3
        )
        src = rng.integers(0, 5, 12).astype(np.int64)
        dst = np.sort(rng.integers(0, 4, 12)).astype(np.int64)
        target = Tensor(rng.standard_normal((4, 6)))
        source = Tensor(rng.standard_normal((5, 6)))
        static = Tensor(rng.standard_normal((12, 2)))
        table = Tensor(rng.standard_normal((7, 3)))
        i0 = rng.integers(0, 7, 12).astype(np.int64)
        i1 = rng.integers(0, 7, 12).astype(np.int64)

        factored = FactoredEdgeAttr(static, [(table, i0), (table, i1)])
        assert factored.dim == 8
        dense = concat(
            [static, gather_rows(table, i0), gather_rows(table, i1)], axis=1
        )
        out_f = module(target, source, src, dst, factored)
        out_d = module(target, source, src, dst, dense)
        np.testing.assert_allclose(out_f.data, out_d.data, atol=1e-9)
        # The reference path densifies the container itself.
        with use_fast_kernels(False):
            out_r = module(target, source, src, dst, factored)
        np.testing.assert_allclose(out_f.data, out_r.data, atol=1e-9)


def _fit_curve(dataset, split, config, epochs=3):
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)
    init.seed(7)
    model = O2SiteRec(dataset, split, config)
    trainer = Trainer(
        model,
        TrainConfig(epochs=epochs, lr=1e-3, patience=epochs, min_epochs=epochs),
    )
    result = trainer.fit(pairs, targets)
    init.seed(7)  # predict in eval mode is RNG-free, reseed for symmetry
    return np.asarray(result.train_losses), model.predict(split.test_pairs)


ABLATIONS = {
    "full": O2SiteRecConfig(capacity_dim=6, embedding_dim=20),
    "wo_na": O2SiteRecConfig(capacity_dim=6, embedding_dim=20).without_node_attention(),
    "wo_sa": O2SiteRecConfig(capacity_dim=6, embedding_dim=20).without_time_attention(),
    "wo_cocu": O2SiteRecConfig(
        capacity_dim=6, embedding_dim=20
    ).without_capacity_and_preferences(),
}


class TestPathEquivalence:
    """Whole-model: every fast configuration tracks the reference path."""

    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_fit_and_predict_match_reference(
        self, micro_dataset, micro_split, name
    ):
        config = ABLATIONS[name]
        curve_fast, pred_fast = _fit_curve(micro_dataset, micro_split, config)
        with use_fast_kernels(False):
            curve_ref, pred_ref = _fit_curve(micro_dataset, micro_split, config)
        np.testing.assert_allclose(curve_fast, curve_ref, rtol=0, atol=1e-9)
        np.testing.assert_allclose(pred_fast, pred_ref, rtol=0, atol=1e-9)

    def test_threaded_matches_serial_bitwise(self, micro_dataset, micro_split):
        from repro.core.recommender import set_batch_periods

        config = ABLATIONS["full"]
        previous = set_batch_periods(False)
        try:
            with use_num_threads(1):
                curve_serial, pred_serial = _fit_curve(
                    micro_dataset, micro_split, config
                )
            with use_num_threads(4):
                curve_threaded, pred_threaded = _fit_curve(
                    micro_dataset, micro_split, config
                )
        finally:
            set_batch_periods(previous)
        np.testing.assert_array_equal(curve_threaded, curve_serial)
        np.testing.assert_array_equal(pred_threaded, pred_serial)

    def test_batched_matches_per_period(self, micro_dataset, micro_split):
        from repro.core.recommender import set_batch_periods

        config = ABLATIONS["full"]
        curve_batched, pred_batched = _fit_curve(micro_dataset, micro_split, config)
        previous = set_batch_periods(False)
        try:
            curve_pp, pred_pp = _fit_curve(micro_dataset, micro_split, config)
        finally:
            set_batch_periods(previous)
        np.testing.assert_allclose(curve_batched, curve_pp, rtol=0, atol=1e-9)
        np.testing.assert_allclose(pred_batched, pred_pp, rtol=0, atol=1e-9)
