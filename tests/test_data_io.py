"""CSV persistence for order logs and store registries."""

import numpy as np
import pytest

from repro.data import load_orders, load_stores, save_orders, save_stores


class TestOrderRoundtrip:
    def test_roundtrip_preserves_records(self, sim, tmp_path):
        path = tmp_path / "orders.csv"
        sample = sim.orders[:200]
        count = save_orders(sample, path)
        assert count == 200
        loaded = load_orders(path)
        assert len(loaded) == 200
        assert loaded[0] == sample[0]
        assert loaded[-1] == sample[-1]

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("order_id,store_id\nO1,S1\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_orders(path)

    def test_invalid_record_reports_line(self, sim, tmp_path):
        path = tmp_path / "orders.csv"
        save_orders(sim.orders[:2], path)
        lines = path.read_text().splitlines()
        # Corrupt the second data row: delivered before pickup.
        parts = lines[2].split(",")
        parts[13] = "0.0"  # delivered_minute
        lines[2] = ",".join(parts)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":3:"):
            load_orders(path)

    def test_aggregates_identical_after_roundtrip(self, sim, tmp_path):
        from repro.data import OrderAggregates

        path = tmp_path / "orders.csv"
        save_orders(sim.orders, path)
        loaded = load_orders(path)
        a = OrderAggregates.from_orders(
            sim.orders, sim.land.num_regions, sim.config.num_store_types
        )
        b = OrderAggregates.from_orders(
            loaded, sim.land.num_regions, sim.config.num_store_types
        )
        assert np.allclose(a.counts_sa, b.counts_sa)
        assert np.allclose(a.region_delivery_time, b.region_delivery_time)


class TestStoreRoundtrip:
    def test_roundtrip(self, sim, tmp_path):
        path = tmp_path / "stores.csv"
        records = [s.record for s in sim.stores[:50]]
        assert save_stores(records, path) == 50
        loaded = load_stores(path)
        assert loaded == records

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("store_id,lon\nS1,121.0\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_stores(path)
