"""Multi-head segment attention (the paper's Aggre) and mean aggregation."""

import numpy as np
import pytest

from repro.nn import MeanSegmentAggregation, MultiHeadSegmentAttention
from repro.tensor import Tensor


def make_inputs(num_targets=4, num_sources=6, num_edges=10, edge_dim=3, seed=0):
    rng = np.random.default_rng(seed)
    target = Tensor(rng.normal(size=(num_targets, 5)), requires_grad=True)
    source = Tensor(rng.normal(size=(num_sources, 7)), requires_grad=True)
    src = rng.integers(0, num_sources, size=num_edges)
    dst = rng.integers(0, num_targets, size=num_edges)
    attr = Tensor(rng.normal(size=(num_edges, edge_dim))) if edge_dim else None
    return target, source, src, dst, attr


class TestMultiHeadSegmentAttention:
    def test_output_shape(self):
        att = MultiHeadSegmentAttention(5, 7, 3, num_heads=2, head_dim=4)
        target, source, src, dst, attr = make_inputs()
        out = att(target, source, src, dst, attr)
        assert out.shape == (4, 8)
        assert att.out_dim == 8

    def test_isolated_target_gets_zeros(self):
        att = MultiHeadSegmentAttention(5, 7, 0, num_heads=2, head_dim=4)
        target, source, _, _, _ = make_inputs(edge_dim=0)
        src = np.array([0, 1])
        dst = np.array([0, 0])  # targets 1..3 receive nothing
        out = att(target, source, src, dst)
        assert np.allclose(out.data[1:], 0.0)

    def test_no_edges_returns_zeros(self):
        att = MultiHeadSegmentAttention(5, 7, 0, num_heads=2, head_dim=4)
        target, source, _, _, _ = make_inputs(edge_dim=0)
        out = att(target, source, np.array([], dtype=int), np.array([], dtype=int))
        assert out.shape == (4, 8)
        assert np.allclose(out.data, 0.0)

    def test_requires_edge_attr_when_declared(self):
        att = MultiHeadSegmentAttention(5, 7, 3, num_heads=2, head_dim=4)
        target, source, src, dst, _ = make_inputs()
        with pytest.raises(ValueError):
            att(target, source, src, dst, None)

    def test_gradients_reach_all_inputs(self):
        att = MultiHeadSegmentAttention(5, 7, 3, num_heads=2, head_dim=4)
        target, source, src, dst, attr = make_inputs()
        att(target, source, src, dst, attr).sum().backward()
        assert target.grad is not None
        assert source.grad is not None
        for p in att.parameters():
            assert p.grad is not None, p.name

    def test_edge_attr_changes_output(self):
        att = MultiHeadSegmentAttention(5, 7, 3, num_heads=2, head_dim=4)
        target, source, src, dst, attr = make_inputs()
        out1 = att(target, source, src, dst, attr).data
        out2 = att(target, source, src, dst, Tensor(attr.data + 1.0)).data
        assert not np.allclose(out1, out2)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MultiHeadSegmentAttention(5, 7, 3, num_heads=0, head_dim=4)


class TestMeanSegmentAggregation:
    def test_output_shape_and_zero_targets(self):
        agg = MeanSegmentAggregation(7, 8)
        target, source, src, dst, _ = make_inputs()
        out = agg(target, source, src, dst)
        assert out.shape == (4, 8)

    def test_no_edges(self):
        agg = MeanSegmentAggregation(7, 8)
        target, source, _, _, _ = make_inputs()
        out = agg(target, source, np.array([], dtype=int), np.array([], dtype=int))
        assert np.allclose(out.data, 0.0)

    def test_ignores_edge_attr(self):
        agg = MeanSegmentAggregation(7, 8)
        target, source, src, dst, attr = make_inputs()
        out1 = agg(target, source, src, dst, attr).data
        out2 = agg(target, source, src, dst, Tensor(attr.data * 5)).data
        assert np.allclose(out1, out2)

    def test_mean_of_identical_sources_is_message(self):
        agg = MeanSegmentAggregation(3, 4)
        source = Tensor(np.ones((2, 3)))
        target = Tensor(np.zeros((1, 5)))
        one = agg(target, source, np.array([0]), np.array([0])).data
        two = agg(target, source, np.array([0, 1]), np.array([0, 0])).data
        assert np.allclose(one, two)
